// isdl_tool — inspects an ISDL machine description the way AVIV's front end
// does (paper Section II): parses it, prints the machine summary, and dumps
// the derived databases — the operation correlation database, the expanded
// (multi-step) transfer database, and the constraint database. Optionally
// emits the Split-Node DAG of a block as Graphviz DOT.
//
//   $ isdl_tool [--machine arch3] [--block fig2] [--dot out.dot]
#include <cstdio>

#include "core/splitnode.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/cli.h"
#include "support/io.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace aviv;
  try {
    CliFlags flags(argc, argv);
    const std::string machineName = flags.getString("machine", "arch3");
    const std::string blockName = flags.getString("block", "");
    const std::string dotPath = flags.getString("dot", "");
    flags.finish();

    const Machine machine = loadMachine(machineName);
    const MachineDatabases dbs(machine);
    std::printf("%s\n", machine.summary().c_str());

    std::printf("Operation correlation database (SUIF op -> target ops):\n");
    for (int i = 0; i < kNumOps; ++i) {
      const Op op = static_cast<Op>(i);
      if (!isMachineOp(op)) continue;
      const auto& impls = dbs.ops.implsFor(op);
      if (impls.empty()) continue;
      std::printf("  %-6s ->", std::string(opName(op)).c_str());
      for (const OpImpl& impl : impls)
        std::printf(" %s", machine.unit(impl.unit).name.c_str());
      std::printf("\n");
    }

    std::printf("\nExpanded transfer database (minimal routes, incl. "
                "multi-step):\n");
    std::vector<Loc> locs;
    for (size_t i = 0; i < machine.regFiles().size(); ++i)
      locs.push_back(Loc::regFile(static_cast<RegFileId>(i)));
    for (size_t i = 0; i < machine.memories().size(); ++i)
      locs.push_back(Loc::memory(static_cast<MemoryId>(i)));
    for (const Loc& from : locs) {
      for (const Loc& to : locs) {
        if (from == to) continue;
        const int cost = dbs.transfers.cost(from, to);
        if (cost >= TransferDatabase::kUnreachable) {
          std::printf("  %-4s -> %-4s  unreachable\n",
                      machine.locName(from).c_str(),
                      machine.locName(to).c_str());
          continue;
        }
        const auto& routes = dbs.transfers.routes(from, to);
        std::printf("  %-4s -> %-4s  %d hop%s, %zu route%s:",
                    machine.locName(from).c_str(),
                    machine.locName(to).c_str(), cost, cost == 1 ? "" : "s",
                    routes.size(), routes.size() == 1 ? "" : "s");
        for (const TransferRoute& route : routes) {
          std::printf(" [");
          for (size_t h = 0; h < route.pathIds.size(); ++h) {
            const TransferPath& p =
                machine.transfers()[static_cast<size_t>(route.pathIds[h])];
            if (h != 0) std::printf(" ");
            std::printf("%s:%s->%s", machine.bus(p.bus).name.c_str(),
                        machine.locName(p.from).c_str(),
                        machine.locName(p.to).c_str());
          }
          std::printf("]");
        }
        std::printf("\n");
      }
    }

    if (machine.constraints().empty()) {
      std::printf("\nNo constraints (all operation groupings orthogonal).\n");
    } else {
      std::printf("\nConstraints (illegal instruction combinations):\n");
      for (const Constraint& c : machine.constraints()) {
        std::printf("  illegal together:");
        for (const OpSel& sel : c.together)
          std::printf(" %s.%s", machine.unit(sel.unit).name.c_str(),
                      std::string(opName(sel.op)).c_str());
        if (!c.note.empty()) std::printf("   (%s)", c.note.c_str());
        std::printf("\n");
      }
    }

    if (!blockName.empty()) {
      const BlockDag dag = loadBlock(blockName);
      const SplitNodeDag snd =
          SplitNodeDag::build(dag, machine, dbs, CodegenOptions{});
      std::printf("\nSplit-Node DAG of block '%s' on %s: %zu nodes "
                  "(%zu leaves, %zu splits, %zu alternatives, %zu "
                  "transfers)\n",
                  blockName.c_str(), machine.name().c_str(), snd.size(),
                  snd.numLeafNodes(), snd.numSplitNodes(), snd.numAltNodes(),
                  snd.numTransferNodes());
      if (!dotPath.empty()) {
        writeFile(dotPath, snd.dot());
        std::printf("DOT written to %s\n", dotPath.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "isdl_tool: %s\n", e.what());
    return 1;
  }
}
