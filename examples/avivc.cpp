// avivc — the AVIV command-line compiler: the Fig 1 toolchain in one
// binary. Compiles a block/program source file for an ISDL machine, prints
// the VLIW assembly, optionally writes an object file (AVIVBIN) and runs
// the result on the instruction-level simulator against the reference
// interpreter.
//
//   avivc <file.blk|file.c> --machine <name|path.isdl> [options]
//
// .blk sources use the block language; .c sources use the MiniC front end
// (docs/blocklang.md, src/frontend/minic.h).
//
// Options:
//   --machine <m>        shipped machine name or a path to an .isdl file
//   --regs <n>           override every register file's size
//   --o <file>           write the (first block's) AVIVBIN object file
//   --asm                print assembly (default on)
//   --bin-stats          print instruction-word format and ROM bytes
//   --simulate k=v,...   run with the given inputs and print outputs
//   --trace              with --simulate: print a per-slot execution log
//   --verify <n>         check n random-input runs against the interpreter
//   --heuristics on|off  assignment search mode (default on)
//   --no-peephole        skip the peephole pass
//   --const-pool         materialize constants via data memory
//   --outputs-mem        store block outputs to data memory
//   --jobs <n>           worker threads for candidate covering and
//                        per-block program compilation (results are
//                        bit-identical to --jobs 1)
//   --stats-json <file>  write the session's phase-telemetry tree as JSON
//   --cache-dir <dir>    compile-result cache directory (shared with the
//                        avivd daemon): identical (machine, block, options)
//                        compiles are replayed from the cache with zero
//                        covering work and bit-identical output
//   --no-cache           ignore --cache-dir (force a cold compile)
//   --verify-output <m>  differential output verification mode: off (default),
//                        sampled, or all. Every selected block is replayed on
//                        the simulator against the reference interpreter
//                        before its result is trusted or cached; a mismatch
//                        quarantines a repro artifact and degrades to the
//                        (re-verified) sequential baseline
//   --verify-vectors <n> input vectors per verified block (default 4)
//   --quarantine-dir <d> where verification failures write repro artifacts
//   --max-snd-nodes <n>  split-node DAG node ceiling (0 = unlimited); past
//                        it the compile degrades to the baseline generator
//   --max-snd-bytes <n>  split-node DAG arena-byte ceiling (0 = unlimited)
//   --max-cliques <n>    total generated-clique ceiling (0 = unlimited)
//   --trace-out <file>   record a flight-recorder trace of the compile and
//                        write it as Chrome trace-event JSON (load in
//                        Perfetto / chrome://tracing, or summarize with
//                        tools/trace_report)
//   --metrics-json <file> enable the metrics registry and write its
//                        aggregated counters/gauges/histograms as JSON
#include <cstdio>
#include <iostream>

#include "asmgen/binary.h"
#include "driver/codegen.h"
#include "service/cache.h"
#include "frontend/minic.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "support/cli.h"
#include "support/io.h"
#include "support/rng.h"
#include "support/strings.h"

namespace {

using namespace aviv;

Machine resolveMachine(const std::string& spec) {
  if (endsWith(spec, ".isdl")) return parseMachine(readFile(spec));
  return loadMachine(spec);
}

std::map<std::string, int64_t> parseBindings(const std::string& spec) {
  std::map<std::string, int64_t> values;
  if (spec.empty()) return values;
  for (const std::string& item : split(spec, ',')) {
    const auto parts = split(item, '=');
    if (parts.size() != 2)
      throw Error("--simulate expects k=v,...; got '" + item + "'");
    values[std::string(trim(parts[0]))] =
        std::stoll(std::string(trim(parts[1])));
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    if (flags.positional().size() != 1)
      throw Error("usage: avivc <file.blk> --machine <name|file.isdl> "
                  "[--regs N] [--o out.avivbin] [--simulate k=v,...] "
                  "[--verify N] [--heuristics on|off] [--no-peephole] "
                  "[--const-pool] [--outputs-mem] [--bin-stats] "
                  "[--jobs N] [--timeout SEC] [--stats-json out.json] "
                  "[--cache-dir DIR] [--no-cache] "
                  "[--verify-output off|sampled|all] [--verify-vectors N] "
                  "[--quarantine-dir DIR] [--max-snd-nodes N] "
                  "[--max-snd-bytes N] [--max-cliques N] "
                  "[--trace-out out.json] [--metrics-json out.json]");
    const std::string sourcePath = flags.positional()[0];
    Machine machine = resolveMachine(flags.getString("machine", "arch1"));
    const int regs = static_cast<int>(flags.getInt("regs", 0));
    if (regs > 0) machine = machine.withRegisterCount(regs);
    const std::string objectPath = flags.getString("o", "");
    const bool printAsm = flags.getBool("asm", true);
    const bool binStats = flags.getBool("bin-stats", false);
    const std::string simulate = flags.getString("simulate", "");
    const bool traceRun = flags.getBool("trace", false);
    const int verifyRuns = static_cast<int>(flags.getInt("verify", 0));
    const std::string heuristics = flags.getString("heuristics", "on");
    DriverOptions options;
    options.core = heuristics == "off" ? CodegenOptions::heuristicsOff()
                                       : CodegenOptions::heuristicsOn();
    options.runPeephole = !flags.getBool("no-peephole", false);
    options.core.constantsInMemory = flags.getBool("const-pool", false);
    options.core.outputsToMemory = flags.getBool("outputs-mem", false);
    options.core.jobs = static_cast<int>(flags.getInt("jobs", 1));
    // Wall-clock covering budget; on expiry the compile degrades to the
    // sequential baseline (see DriverOptions::baselineFallback).
    options.core.timeLimitSeconds = flags.getDouble("timeout", 0.0);
    const std::string statsJson = flags.getString("stats-json", "");
    const std::string cacheDir = flags.getString("cache-dir", "");
    const bool noCache = flags.getBool("no-cache", false);
    const std::string verifyOutput = flags.getString("verify-output", "off");
    if (verifyOutput == "sampled") {
      options.verify.level = VerifyLevel::kSampled;
    } else if (verifyOutput == "all") {
      options.verify.level = VerifyLevel::kAll;
    } else if (verifyOutput != "off") {
      throw Error("--verify-output expects off|sampled|all, got '" +
                  verifyOutput + "'");
    }
    options.verify.vectors =
        static_cast<int>(flags.getInt("verify-vectors", 4));
    options.verify.quarantineDir = flags.getString("quarantine-dir", "");
    options.core.maxSndNodes = static_cast<size_t>(
        flags.getInt("max-snd-nodes",
                     static_cast<int64_t>(options.core.maxSndNodes)));
    options.core.maxSndBytes = static_cast<size_t>(
        flags.getInt("max-snd-bytes",
                     static_cast<int64_t>(options.core.maxSndBytes)));
    options.core.maxTotalCliques = static_cast<size_t>(
        flags.getInt("max-cliques",
                     static_cast<int64_t>(options.core.maxTotalCliques)));
    if (!cacheDir.empty() && !noCache) {
      CacheConfig cacheConfig;
      cacheConfig.dir = cacheDir;
      options.cache = std::make_shared<ResultCache>(cacheConfig);
    }
    const std::string traceOut = flags.getString("trace-out", "");
    const std::string metricsJson = flags.getString("metrics-json", "");
    flags.finish();

    // Observability is opt-in per run: until these flags flip the global
    // gates, every emit site in the pipeline is a single-branch no-op and
    // the compiled output is byte-identical to an uninstrumented build.
    if (!traceOut.empty()) trace::Tracer::instance().enable();
    if (!metricsJson.empty()) metrics::Registry::instance().enable();

    const Program program = [&] {
      if (endsWith(sourcePath, ".c"))
        return parseMiniC(readFile(sourcePath)).program;
      return parseProgram(readFile(sourcePath), sourcePath);
    }();
    CodeGenerator generator(machine, options);
    auto dumpStats = [&] {
      if (!statsJson.empty())
        writeFile(statsJson, generator.telemetry().toJson() + "\n");
      if (!traceOut.empty())
        writeFile(traceOut, trace::Tracer::instance().exportJson());
      if (!metricsJson.empty())
        writeFile(metricsJson, metrics::Registry::instance().toJson());
      if (options.cache != nullptr) {
        // To stderr so cached and cold runs produce byte-identical stdout.
        const CacheStats cs = options.cache->stats();
        std::fprintf(stderr, "; cache: %lld hits, %lld misses, %lld corrupt\n",
                     static_cast<long long>(cs.hits),
                     static_cast<long long>(cs.misses),
                     static_cast<long long>(cs.corrupt));
      }
    };
    const bool multiBlock = program.numBlocks() > 1;

    // Verification failures degrade to the verified baseline; surface them
    // on stderr so batch logs show which blocks were quarantined.
    auto reportQuarantined = [&](const CompiledBlock& b,
                                 const std::string& name) {
      if (!b.quarantined) return;
      std::fprintf(stderr,
                   "avivc: block '%s' failed output verification; emitted "
                   "the verified baseline instead (repro quarantined%s%s)\n",
                   name.c_str(),
                   options.verify.quarantineDir.empty() ? "" : " under ",
                   options.verify.quarantineDir.c_str());
    };

    if (multiBlock) {
      const CompiledProgram compiled = generator.compileProgram(program);
      dumpStats();
      for (size_t i = 0; i < compiled.blocks.size(); ++i)
        reportQuarantined(compiled.blocks[i], program.block(i).name());
      std::printf("; program '%s' on %s: %d instructions total "
                  "(%zu blocks + control)\n\n",
                  program.name().c_str(), machine.name().c_str(),
                  compiled.totalInstructions(), compiled.blocks.size());
      if (printAsm) {
        for (const CompiledBlock& block : compiled.blocks)
          std::printf("%s\n", block.image.asmText(machine).c_str());
      }
      if (!simulate.empty()) {
        const auto inputs = parseBindings(simulate);
        const auto outputs = simulateProgram(machine, compiled, inputs);
        for (const auto& [name, value] : outputs)
          std::printf("%s = %lld\n", name.c_str(),
                      static_cast<long long>(value));
      }
      if (verifyRuns > 0) {
        Rng rng(1);
        std::map<std::string, int64_t> inputs;
        for (int run = 0; run < verifyRuns; ++run) {
          for (const std::string& name : program.block(0).inputNames())
            inputs[name] = rng.intIn(-100, 100);
          const auto expected = evalProgram(program, inputs);
          const auto actual = simulateProgram(machine, compiled, inputs);
          for (const auto& [name, value] : expected) {
            if (actual.count(name) && actual.at(name) != value) {
              std::printf("VERIFY FAILED: %s\n", name.c_str());
              return 1;
            }
          }
        }
        std::printf("; verified %d random-input runs against the reference "
                    "interpreter\n",
                    verifyRuns);
      }
      if (!objectPath.empty())
        std::fprintf(stderr,
                     "avivc: --o only supports single-block sources\n");
      return 0;
    }

    // Single block: full toolchain including the assembler.
    const BlockDag& block = program.block(0);
    SymbolTable symbols;
    const CompiledBlock compiled = generator.compileBlock(block, symbols);
    dumpStats();
    reportQuarantined(compiled, block.name());
    if (printAsm)
      std::printf("%s\n", compiled.image.asmText(machine).c_str());

    const BinaryImage binary =
        assembleBinary(compiled.image, machine, symbols);
    if (binStats) {
      const BinaryFormat format(machine);
      std::printf("%s", format.describe().c_str());
      std::printf("ROM: %d instructions x %d bits = %zu bytes\n\n",
                  binary.numInstructions, binary.bitsPerInstruction,
                  binary.romBytes());
    }
    if (!objectPath.empty()) {
      writeFile(objectPath, serializeBinary(binary));
      std::printf("; object written to %s (%zu ROM bytes)\n",
                  objectPath.c_str(), binary.romBytes());
    }

    const Simulator sim(machine);
    if (!simulate.empty()) {
      const auto inputs = parseBindings(simulate);
      MachineState state = sim.initialState();
      sim.writeVars(state, symbols, inputs);
      sim.loadConstPool(state, compiled.image);
      const auto outputs =
          sim.runBlock(compiled.image, state, nullptr,
                       traceRun ? &std::cout : nullptr);
      for (const auto& [name, value] : outputs)
        std::printf("%s = %lld\n", name.c_str(),
                    static_cast<long long>(value));
    }
    if (verifyRuns > 0) {
      // Verify the *disassembled binary*, exercising the whole Fig 1 loop.
      const CodeImage decoded = disassembleBinary(binary, machine);
      Rng rng(1);
      for (int run = 0; run < verifyRuns; ++run) {
        std::map<std::string, int64_t> inputs;
        for (const std::string& name : block.inputNames())
          inputs[name] = rng.intIn(-100, 100);
        if (sim.runBlockFresh(decoded, symbols, inputs) !=
            evalDagOutputs(block, inputs)) {
          std::printf("VERIFY FAILED on run %d\n", run);
          return 1;
        }
      }
      std::printf("; verified %d random-input runs of the assembled binary "
                  "against the reference interpreter\n",
                  verifyRuns);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "avivc: %s\n", e.what());
    return 1;
  }
}
