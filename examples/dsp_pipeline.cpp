// dsp_pipeline — a realistic multi-block DSP program: an AGC-style loop
// that runs a biquad-like filter section per sample, accumulates energy,
// and branches on saturation. Demonstrates control-flow compilation
// (Section III-C), the shared symbol table, and end-to-end validation of
// the compiled program against the reference interpreter.
//
//   $ dsp_pipeline [--machine arch4] [--samples 6]
#include <cstdio>

#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/cli.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace aviv;
  try {
    CliFlags flags(argc, argv);
    const std::string machineName = flags.getString("machine", "arch4");
    const int samples = static_cast<int>(flags.getInt("samples", 6));
    flags.finish();

    // One filter step per loop iteration; gain halves on saturation.
    const Program program = parseProgram(R"(
      block filter_step {
        input x, z1, z2, b0, b1, a1, gain, energy, n;
        output y, z1, z2, energy, n, saturated;
        # transposed direct-form II-ish section (integer arithmetic)
        y = (x * b0 + z1) * gain;
        z1 = x * b1 - y * a1 + z2;
        z2 = x * b1;
        energy = energy + y * y;
        n = n - 1;
        saturated = energy > 1000000;
        if saturated goto reduce_gain else next_sample;
      }
      block reduce_gain {
        input gain, energy;
        output gain, energy;
        gain = gain >> 1;
        energy = energy - energy;   # reset to 0 (constant outputs need an op)
      }
      block next_sample {
        input n;
        output cond;
        cond = n > 0;
        if cond goto filter_step else done;
      }
      block done {
        input energy, gain;
        output energy, gain;
        return;
      }
    )",
                                         "agc_filter");

    const Machine machine = loadMachine(machineName);
    CodeGenerator generator(machine);
    const CompiledProgram compiled = generator.compileProgram(program);

    std::printf("Compiled program '%s' for %s:\n", program.name().c_str(),
                machine.name().c_str());
    for (size_t i = 0; i < compiled.blocks.size(); ++i) {
      std::printf("  block %-12s %3d instructions (%d spills)\n",
                  program.block(i).name().c_str(),
                  compiled.blocks[i].numInstructions(),
                  compiled.blocks[i].core.stats.cover.spillsInserted);
    }
    std::printf("  total (with control instructions): %d\n\n",
                compiled.totalInstructions());

    std::printf("Assembly of block 'filter_step':\n%s\n",
                compiled.blocks[0].image.asmText(machine).c_str());

    // Run compiled program vs the reference interpreter.
    const std::map<std::string, int64_t> inputs = {
        {"x", 15},  {"z1", 0}, {"z2", 0},     {"b0", 3}, {"b1", 2},
        {"a1", 1},  {"gain", 8}, {"energy", 0}, {"n", samples}};
    size_t cycles = 0;
    const auto actual = simulateProgram(machine, compiled, inputs, 10000,
                                        &cycles);
    const auto expected = evalProgram(program, inputs);
    std::printf("after %d samples (%zu simulated cycles):\n", samples,
                cycles);
    for (const char* var : {"energy", "gain"}) {
      std::printf("  %-7s simulated=%-12lld reference=%-12lld %s\n", var,
                  static_cast<long long>(actual.at(var)),
                  static_cast<long long>(expected.at(var)),
                  actual.at(var) == expected.at(var) ? "OK" : "MISMATCH");
    }
    return actual.at("energy") == expected.at("energy") &&
                   actual.at("gain") == expected.at("gain")
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsp_pipeline: %s\n", e.what());
    return 1;
  }
}
