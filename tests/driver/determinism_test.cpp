// Parallelism determinism property: with options.core.jobs > 1 the pipeline
// covers candidate assignments and compiles program blocks on a thread pool,
// and the result must be BIT-IDENTICAL to the serial run — same assembly
// text, same schedules, same instruction counts, and the same error when
// compilation fails. Enumerates every shipped block × machine pair so new
// data files are covered automatically.
//
// Each pair is additionally cross-checked against tests/golden/ — assembly
// (or the error message) frozen before the hot-path memory refactor. Any
// layout or ownership change that perturbs the emitted code fails here, at
// both jobs=1 and jobs=4. Regenerate the files deliberately when an
// intentional output change lands (see tests/golden/README).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/io.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> stemsWithExtension(const std::string& dir,
                                            const std::string& ext) {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ext)
      stems.push_back(entry.path().stem().string());
  std::sort(stems.begin(), stems.end());
  return stems;
}

// Everything observable about one standalone-block compilation.
struct BlockOutcome {
  bool ok = false;
  std::string error;
  std::string asmText;
  std::vector<std::vector<AgId>> schedule;
  int instructions = 0;

  bool operator==(const BlockOutcome&) const = default;
};

BlockOutcome compileOutcome(const BlockDag& dag, const Machine& machine,
                            int jobs) {
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.jobs = jobs;
  BlockOutcome out;
  try {
    CodeGenerator generator(machine, options);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    out.ok = true;
    out.asmText = block.image.asmText(machine);
    out.schedule = block.core.schedule.instrs;
    out.instructions = block.numInstructions();
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

struct DeterminismCase {
  std::string block;
  std::string machine;
};

class ParallelDeterminism : public ::testing::TestWithParam<DeterminismCase> {};

// Machine params may name a subdirectory ("zoo/wide"); golden file names
// and gtest case names flatten the separator.
std::string flat(std::string name) {
  for (char& c : name)
    if (c == '/') c = '_';
  return name;
}

// The frozen outcome for one (block, machine) pair: the assembly text for
// successful compiles, "ERROR: <message>\n" for expected failures. Empty
// optional when no golden file exists (a newly added data file).
std::optional<std::string> goldenOutcome(const std::string& block,
                                         const std::string& machine) {
  const fs::path path =
      fs::path(AVIV_GOLDEN_DIR) / (block + "_" + flat(machine) + ".asm");
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST_P(ParallelDeterminism, SerialAndParallelBitIdentical) {
  const BlockDag dag = loadBlock(GetParam().block);
  const Machine machine = loadMachine(GetParam().machine);
  const BlockOutcome serial = compileOutcome(dag, machine, 1);
  const BlockOutcome parallel = compileOutcome(dag, machine, 4);
  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(serial.error, parallel.error);
  EXPECT_EQ(serial.asmText, parallel.asmText);
  EXPECT_EQ(serial.schedule, parallel.schedule);
  EXPECT_EQ(serial.instructions, parallel.instructions);

  const std::optional<std::string> golden =
      goldenOutcome(GetParam().block, GetParam().machine);
  if (!golden.has_value()) return;  // new data file, no frozen output yet
  const std::string serialOutcome =
      serial.ok ? serial.asmText : "ERROR: " + serial.error + "\n";
  const std::string parallelOutcome =
      parallel.ok ? parallel.asmText : "ERROR: " + parallel.error + "\n";
  EXPECT_EQ(serialOutcome, *golden);
  EXPECT_EQ(parallelOutcome, *golden);
}

std::vector<DeterminismCase> allCases() {
  std::vector<DeterminismCase> cases;
  for (const std::string& machine : stemsWithExtension(machineDir(), ".isdl"))
    for (const std::string& block : stemsWithExtension(blockDir(), ".blk"))
      cases.push_back({block, machine});
  // The fuzzer's stress-architecture zoo (machines/zoo, regenerable with
  // `fuzz_gen --emit-zoo`) rides the same matrix: the hostile shapes the
  // generator produces stay pinned at jobs=1 == jobs=4 == golden forever.
  const std::string zooDir = machineDir() + "/zoo";
  if (fs::exists(zooDir))
    for (const std::string& machine : stemsWithExtension(zooDir, ".isdl"))
      for (const std::string& block : stemsWithExtension(blockDir(), ".blk"))
        cases.push_back({block, "zoo/" + machine});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBlocksAllMachines, ParallelDeterminism,
                         ::testing::ValuesIn(allCases()),
                         [](const auto& info) {
                           return flat(info.param.block + "_" +
                                       info.param.machine);
                         });

// Program-level: parallel block compilation must merge its private symbol
// scopes into exactly the table the serial shared-table run builds.
TEST(ParallelDeterminism, ProgramCompilationMatchesSerial) {
  const Program program = parseProgram(R"(
    block entry {
      input n;
      output cond, x;
      x = n * n;
      cond = x > 100;
      if cond goto big else small;
    }
    block big {
      input x;
      output r, s;
      s = x + x;
      r = x - 100 + s;
      return;
    }
    block small {
      input x;
      output r;
      r = x + 1;
      return;
    }
  )",
                                       "branchy");
  const Machine machine = loadMachine("arch1");

  auto compileWith = [&](int jobs) {
    DriverOptions options;
    options.core = CodegenOptions::heuristicsOn();
    options.core.jobs = jobs;
    CodeGenerator generator(machine, options);
    return generator.compileProgram(program);
  };
  const CompiledProgram serial = compileWith(1);
  const CompiledProgram parallel = compileWith(4);

  EXPECT_EQ(serial.totalInstructions(), parallel.totalInstructions());
  EXPECT_EQ(serial.symbols.all(), parallel.symbols.all());
  ASSERT_EQ(serial.blocks.size(), parallel.blocks.size());
  for (size_t i = 0; i < serial.blocks.size(); ++i) {
    EXPECT_EQ(serial.blocks[i].image.asmText(machine),
              parallel.blocks[i].image.asmText(machine))
        << "block " << i;
    EXPECT_EQ(serial.blocks[i].core.schedule.instrs,
              parallel.blocks[i].core.schedule.instrs)
        << "block " << i;
  }
  ASSERT_EQ(serial.control.size(), parallel.control.size());
  for (size_t i = 0; i < serial.control.size(); ++i) {
    EXPECT_EQ(serial.control[i].kind, parallel.control[i].kind);
    EXPECT_EQ(serial.control[i].targetBlock, parallel.control[i].targetBlock);
    EXPECT_EQ(serial.control[i].elseBlock, parallel.control[i].elseBlock);
    EXPECT_EQ(serial.control[i].condAddr, parallel.control[i].condAddr);
  }
}

// Compiling the same input twice in one session must also be stable when the
// pool is reused (exercises epoch reuse in the work-stealing pool).
TEST(ParallelDeterminism, RepeatedParallelRunsStable) {
  const BlockDag dag = loadBlock("fig2");
  const Machine machine = loadMachine("arch3");
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.jobs = 4;
  CodeGenerator generator(machine, options);
  SymbolTable s1;
  SymbolTable s2;
  EXPECT_EQ(generator.compileBlock(dag, s1).image.asmText(machine),
            generator.compileBlock(dag, s2).image.asmText(machine));
}

}  // namespace
}  // namespace aviv
