// Search telemetry: the covering pipeline's exploration/covering effort is
// recorded in the phase-telemetry tree (nodesVisited, prunedByBound,
// backtracks, candidatesAbandoned, best-cost trajectory), round-trips
// through coreStatsView, and — because every counter is a per-candidate
// sum reduced deterministically — is identical for serial and parallel
// covering runs.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/codegen.h"
#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

struct CompileRun {
  CompiledBlock block;
  TelemetryNode telemetry{""};
};

CompileRun compileWithJobs(const std::string& blockName,
                    const std::string& machineName, int jobs) {
  const BlockDag dag = loadBlock(blockName);
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.jobs = jobs;
  CodeGenerator generator(loadMachine(machineName), options);
  SymbolTable symbols;
  CompileRun run{generator.compileBlock(dag, symbols), TelemetryNode("")};
  // Deep-copy the telemetry tree out of the generator (merge into an empty
  // node) so the generator can be destroyed.
  run.telemetry.merge(generator.telemetry());
  return run;
}

TEST(SearchTelemetry, CountersRecordedAndViewRoundTrips) {
  const CompileRun run = compileWithJobs("fig2", "arch3", 1);
  const TelemetryNode* block = run.telemetry.findChild("block:fig2");
  ASSERT_NE(block, nullptr);

  const TelemetryNode* search = block->findChild("search");
  ASSERT_NE(search, nullptr);
  EXPECT_GT(search->counter("nodesVisited"), 0);
  EXPECT_TRUE(search->hasCounter("prunedByBound"));
  EXPECT_TRUE(search->hasCounter("backtracks"));
  EXPECT_TRUE(search->hasCounter("candidatesAbandoned"));

  // The view read back from telemetry matches the in-memory stats the
  // compile produced — the cache replay path depends on this symmetry.
  const CoreStats& live = run.block.core.stats;
  const CoreStats view = coreStatsView(*block);
  EXPECT_EQ(view.search.nodesVisited, live.search.nodesVisited);
  EXPECT_EQ(view.search.prunedByBound, live.search.prunedByBound);
  EXPECT_EQ(view.search.backtracks, live.search.backtracks);
  EXPECT_EQ(view.search.candidatesAbandoned, live.search.candidatesAbandoned);
  ASSERT_EQ(view.trajectory.size(), live.trajectory.size());
  for (size_t k = 0; k < view.trajectory.size(); ++k) {
    EXPECT_EQ(view.trajectory[k].candidate, live.trajectory[k].candidate);
    EXPECT_EQ(view.trajectory[k].instructions,
              live.trajectory[k].instructions);
    EXPECT_EQ(view.trajectory[k].spills, live.trajectory[k].spills);
  }
}

TEST(SearchTelemetry, TrajectoryIsMonotoneAndEndsAtWinner) {
  const CompileRun run = compileWithJobs("fig2", "arch3", 1);
  const auto& trajectory = run.block.core.stats.trajectory;
  ASSERT_FALSE(trajectory.empty());
  for (size_t k = 1; k < trajectory.size(); ++k) {
    // Strictly improving in (instructions, spills) lexicographic cost.
    const auto prev = std::pair{trajectory[k - 1].instructions,
                                trajectory[k - 1].spills};
    const auto cur =
        std::pair{trajectory[k].instructions, trajectory[k].spills};
    EXPECT_LT(cur, prev) << "trajectory step " << k;
    EXPECT_GT(trajectory[k].candidate, trajectory[k - 1].candidate);
  }
  // The last point is the winning candidate's covering cost (peephole may
  // still shrink the final image below it, never above).
  EXPECT_LE(run.block.numInstructions(), trajectory.back().instructions);
}

TEST(SearchTelemetry, SerialAndParallelCountersIdentical) {
  CompileRun serial = compileWithJobs("fig2", "arch3", 1);
  CompileRun parallel = compileWithJobs("fig2", "arch3", 4);
  // The session records its worker count ("jobs" on the root and on the
  // cover phase) — the one counter that legitimately differs. Neutralize
  // it, then demand bit-identical trees: sameShapeAs compares names, every
  // other counter, and topology (including the search child and the
  // best:<k> trajectory children) while ignoring wall-clock seconds, so
  // search effort must not depend on the worker count.
  for (CompileRun* run : {&serial, &parallel}) {
    run->telemetry.setCounter("jobs", 0);
    run->telemetry.child("block:fig2").child("cover").setCounter("jobs", 0);
  }
  EXPECT_TRUE(serial.telemetry.sameShapeAs(parallel.telemetry));
  const TelemetryNode* block = parallel.telemetry.findChild("block:fig2");
  ASSERT_NE(block, nullptr);
  const CoreStats a = coreStatsView(*serial.telemetry.findChild("block:fig2"));
  const CoreStats b = coreStatsView(*block);
  EXPECT_EQ(a.search.nodesVisited, b.search.nodesVisited);
  EXPECT_EQ(a.search.backtracks, b.search.backtracks);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
}

}  // namespace
}  // namespace aviv
