// Randomized end-to-end properties: for random basic blocks and random
// machine descriptions, the compiled code must simulate to exactly the
// reference interpreter's values, and the quality ordering
// optimal <= AVIV <= phase-ordered baseline must hold.
#include <gtest/gtest.h>

#include "baseline/optimal.h"
#include "baseline/sequential.h"
#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/random_dag.h"
#include "isdl/parser.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "support/strings.h"

namespace aviv {
namespace {

std::map<std::string, int64_t> randomInputs(const BlockDag& dag, Rng& rng) {
  std::map<std::string, int64_t> inputs;
  for (const std::string& name : dag.inputNames())
    inputs[name] = rng.intIn(-1000, 1000);
  return inputs;
}

void expectCompiledCorrect(const BlockDag& dag, const Machine& machine,
                           DriverOptions options = {}, int trials = 4) {
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock compiled = generator.compileBlock(dag, symbols);
  const Simulator sim(machine);
  Rng rng(dag.size() * 31 + machine.units().size());
  for (int t = 0; t < trials; ++t) {
    const auto inputs = randomInputs(dag, rng);
    ASSERT_EQ(sim.runBlockFresh(compiled.image, symbols, inputs),
              evalDagOutputs(dag, inputs))
        << dag.name() << " on " << machine.name();
  }
}

// --- random DAGs on the shipped machines -------------------------------

class RandomDagPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagPipeline, CorrectOnAllShippedMachines) {
  RandomDagSpec spec;
  spec.seed = GetParam();
  Rng shape(spec.seed * 7919);
  spec.numInputs = 2 + static_cast<int>(shape.below(5));
  spec.numOps = 4 + static_cast<int>(shape.below(12));
  spec.numOutputs = 1 + static_cast<int>(shape.below(3));
  spec.reuseBias = 0.3 + 0.5 * (static_cast<double>(shape.below(100)) / 100);
  const BlockDag dag = makeRandomDag(spec);
  for (const char* machineName : {"arch1", "arch2", "arch3", "arch4"}) {
    expectCompiledCorrect(dag, loadMachine(machineName));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagPipeline,
                         ::testing::Range<uint64_t>(1, 26));

// --- random DAGs under register pressure --------------------------------

class RandomDagPressure : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDagPressure, CorrectWithTwoRegisterFiles) {
  RandomDagSpec spec;
  spec.seed = GetParam() * 131;
  spec.numInputs = 3;
  spec.numOps = 8 + static_cast<int>(GetParam() % 6);
  spec.numOutputs = 2;
  spec.reuseBias = 0.7;  // deep and serial: maximum pressure
  const BlockDag dag = makeRandomDag(spec);
  expectCompiledCorrect(dag, loadMachine("arch1").withRegisterCount(2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagPressure,
                         ::testing::Range<uint64_t>(1, 16));

// --- random machines -----------------------------------------------------

// Builds a random but valid machine: 1-3 units with random repertoires
// (ADD/SUB/MUL coverage guaranteed), random register counts, 1-2 buses.
Machine makeRandomMachine(uint64_t seed) {
  Rng rng(seed);
  Machine machine("fuzz" + std::to_string(seed));
  const int numUnits = 1 + static_cast<int>(rng.below(3));
  std::vector<RegFileId> banks;
  for (int u = 0; u < numUnits; ++u) {
    banks.push_back(machine.addRegFile(
        {"R" + std::to_string(u), 2 + static_cast<int>(rng.below(5))}));
  }
  const MemoryId dm = machine.addMemory({"DM", 128, true});
  (void)dm;
  const int numBuses = 1 + static_cast<int>(rng.below(2));
  for (int b = 0; b < numBuses; ++b)
    machine.addBus({"B" + std::to_string(b), 1 + static_cast<int>(rng.below(2))});

  const std::vector<Op> pool = {Op::kAdd, Op::kSub, Op::kMul};
  for (int u = 0; u < numUnits; ++u) {
    FunctionalUnit unit;
    unit.name = "U" + std::to_string(u);
    unit.regFile = banks[static_cast<size_t>(u)];
    for (Op op : pool) {
      if (rng.chance(0.6)) unit.ops.push_back({op, toLower(std::string(opName(op))), 1});
    }
    if (unit.ops.empty()) unit.ops.push_back({Op::kAdd, "add", 1});
    machine.addUnit(std::move(unit));
  }
  // Guarantee every pool op is implementable somewhere: give unit 0 the
  // missing ones.
  {
    OpDatabase ops(machine);
    FunctionalUnit patched = machine.units()[0];
    Machine rebuilt(machine.name());
    for (const RegFile& rf : machine.regFiles()) rebuilt.addRegFile(rf);
    for (const Memory& mem : machine.memories()) rebuilt.addMemory(mem);
    for (const Bus& bus : machine.buses()) rebuilt.addBus(bus);
    for (Op op : pool) {
      if (!ops.isImplementable(op))
        patched.ops.push_back({op, toLower(std::string(opName(op))), 1});
    }
    rebuilt.addUnit(patched);
    for (size_t u = 1; u < machine.units().size(); ++u)
      rebuilt.addUnit(machine.units()[u]);
    machine = std::move(rebuilt);
  }
  // Transfers: every storage pair over a random bus (complete connectivity
  // keeps every random block compilable).
  std::vector<Loc> locs;
  for (size_t i = 0; i < machine.regFiles().size(); ++i)
    locs.push_back(Loc::regFile(static_cast<RegFileId>(i)));
  locs.push_back(machine.dataMemoryLoc());
  for (const Loc& from : locs) {
    for (const Loc& to : locs) {
      if (from == to) continue;
      machine.addTransfer(
          {from, to,
           static_cast<BusId>(rng.below(machine.buses().size()))});
    }
  }
  machine.validate();
  return machine;
}

class RandomMachinePipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMachinePipeline, CompilesAndSimulatesCorrectly) {
  const Machine machine = makeRandomMachine(GetParam() * 977);
  RandomDagSpec spec;
  spec.seed = GetParam() * 13;
  spec.numInputs = 3;
  spec.numOps = 6 + static_cast<int>(GetParam() % 8);
  spec.numOutputs = 2;
  const BlockDag dag = makeRandomDag(spec);
  expectCompiledCorrect(dag, machine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMachinePipeline,
                         ::testing::Range<uint64_t>(1, 21));

// --- quality ordering ------------------------------------------------------

class QualityOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QualityOrdering, OptimalLeAvivLeSequential) {
  RandomDagSpec spec;
  spec.seed = GetParam() * 10007;
  spec.numInputs = 3;
  spec.numOps = 5 + static_cast<int>(GetParam() % 4);
  spec.numOutputs = 1;
  const BlockDag dag = makeRandomDag(spec);
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);

  const CoreResult aviv =
      coverBlock(dag, machine, dbs, CodegenOptions::heuristicsOn());
  const BaselineResult seq =
      sequentialCodegen(dag, machine, dbs, CodegenOptions{});
  OptimalOptions optimalOptions;
  optimalOptions.incumbent = aviv.schedule.numInstructions();
  optimalOptions.timeLimitSeconds = 30;
  const OptimalResult optimal =
      optimalCodeSize(dag, machine, dbs, optimalOptions);

  ASSERT_GE(optimal.instructions, 1);
  EXPECT_LE(optimal.instructions, aviv.schedule.numInstructions());
  EXPECT_LE(aviv.schedule.numInstructions(),
            seq.schedule.numInstructions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityOrdering,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace aviv
