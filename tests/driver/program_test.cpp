// Multi-block programs: control-flow covering (Section III-C) plus the full
// pipeline, validated against the reference program interpreter.
#include <gtest/gtest.h>

#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/rng.h"

namespace aviv {
namespace {

void expectProgramCorrect(const Program& program, const Machine& machine,
                          const std::vector<std::string>& inputVars,
                          const std::vector<std::string>& checkVars,
                          int trials = 8, int64_t lo = -50, int64_t hi = 50) {
  CodeGenerator generator(machine);
  const CompiledProgram compiled = generator.compileProgram(program);
  Rng rng(0xAB ^ program.numBlocks());
  for (int t = 0; t < trials; ++t) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : inputVars) inputs[name] = rng.intIn(lo, hi);
    const auto expected = evalProgram(program, inputs);
    const auto actual = simulateProgram(machine, compiled, inputs);
    for (const std::string& var : checkVars)
      EXPECT_EQ(actual.at(var), expected.at(var)) << var;
  }
}

TEST(ProgramCodegen, StraightLineTwoBlocks) {
  const Program program = parseProgram(R"(
    block first {
      input a, b;
      output t;
      t = a * b;
    }
    block second {
      input t, c;
      output y;
      y = t + c;
      return;
    }
  )",
                                       "straight");
  expectProgramCorrect(program, loadMachine("arch1"), {"a", "b", "c"}, {"y"});
}

TEST(ProgramCodegen, Branching) {
  const Program program = parseProgram(R"(
    block entry {
      input n;
      output cond, x;
      x = n * n;
      cond = x > 100;
      if cond goto big else small;
    }
    block big {
      input x;
      output r;
      r = x - 100;
      return;
    }
    block small {
      input x;
      output r;
      r = x + 1;
      return;
    }
  )",
                                       "branchy");
  expectProgramCorrect(program, loadMachine("arch1"), {"n"}, {"r"});
}

TEST(ProgramCodegen, LoopAccumulates) {
  const Program program = parseProgram(R"(
    block loop {
      input i, acc, k;
      output i, acc, cond;
      acc = acc + i * k;
      i = i - 1;
      cond = i > 0;
      if cond goto loop else done;
    }
    block done {
      input acc;
      output acc;
      return;
    }
  )",
                                       "looper");
  expectProgramCorrect(program, loadMachine("arch1"), {"i", "acc", "k"},
                       {"acc"}, 6, 1, 8);
}

TEST(ProgramCodegen, ControlInstructionsCounted) {
  const Program program = parseProgram(R"(
    block a { input x; output t; t = x + 1; }
    block b { input t; output y; y = t * 2; return; }
  )",
                                       "p");
  CodeGenerator generator(loadMachine("arch1"));
  const CompiledProgram compiled = generator.compileProgram(program);
  ASSERT_EQ(compiled.control.size(), 2u);
  EXPECT_EQ(compiled.control[0].kind, TermKind::kJump);
  EXPECT_EQ(compiled.control[1].kind, TermKind::kReturn);
  int bodies = 0;
  for (const CompiledBlock& block : compiled.blocks)
    bodies += block.numInstructions();
  // One jump instruction on top of the block bodies.
  EXPECT_EQ(compiled.totalInstructions(), bodies + 1);
}

TEST(ProgramCodegen, SharedSymbolTableAcrossBlocks) {
  const Program program = parseProgram(R"(
    block a { input x; output t; t = x + 1; }
    block b { input t; output y; y = t * 2; return; }
  )",
                                       "p");
  CodeGenerator generator(loadMachine("arch1"));
  const CompiledProgram compiled = generator.compileProgram(program);
  // 't' written by block a and read by block b must be one address.
  EXPECT_TRUE(compiled.symbols.contains("t"));
  EXPECT_TRUE(compiled.symbols.contains("x"));
  EXPECT_TRUE(compiled.symbols.contains("y"));
}

TEST(ProgramCodegen, RunsOnReducedArch2) {
  const Program program = parseProgram(R"(
    block entry {
      input a, b;
      output p, cond;
      p = a * b;
      cond = p < 0;
      if cond goto neg else pos;
    }
    block neg { input p; output r; r = 0 - p; return; }
    block pos { input p; output r; r = p; return; }
  )",
                                       "absmul");
  expectProgramCorrect(program, loadMachine("arch2"), {"a", "b"}, {"r"});
}

}  // namespace
}  // namespace aviv
