// Configuration-matrix sweep: every shipped workload x machine x option
// combination must compile and simulate to the reference interpreter's
// values. This is the broadest correctness net in the suite.
#include <gtest/gtest.h>

#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace aviv {
namespace {

struct MatrixCase {
  std::string block;
  std::string machine;
  std::string config;  // default | constpool | outputsmem | nopeephole
};

DriverOptions optionsFor(const std::string& config) {
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  if (config == "constpool") options.core.constantsInMemory = true;
  if (config == "outputsmem") options.core.outputsToMemory = true;
  if (config == "nopeephole") options.runPeephole = false;
  return options;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, CompiledCodeMatchesReference) {
  const MatrixCase& param = GetParam();
  const BlockDag dag = loadBlock(param.block);
  const Machine machine = loadMachine(param.machine);
  CodeGenerator generator(machine, optionsFor(param.config));
  SymbolTable symbols;
  const CompiledBlock compiled = generator.compileBlock(dag, symbols);
  const Simulator sim(machine);
  Rng rng(0xFACE ^ (dag.size() * 131));
  for (int trial = 0; trial < 5; ++trial) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : dag.inputNames())
      inputs[name] = rng.intIn(-500, 500);
    ASSERT_EQ(sim.runBlockFresh(compiled.image, symbols, inputs),
              evalDagOutputs(dag, inputs))
        << param.block << " " << param.machine << " " << param.config;
  }
}

std::vector<MatrixCase> matrixCases() {
  std::vector<MatrixCase> cases;
  const std::vector<std::string> configs = {"default", "constpool",
                                            "outputsmem", "nopeephole"};
  // Arithmetic-only workloads run everywhere.
  for (const char* block :
       {"ex1", "ex2", "ex3", "ex4", "ex5", "biquad", "dct4"}) {
    for (const char* machine : {"arch1", "arch2", "arch4", "dsp16"}) {
      for (const std::string& config : configs)
        cases.push_back({block, machine, config});
    }
  }
  // matvec2 needs MIN/MAX, which only dsp16 implements.
  for (const std::string& config : configs)
    cases.push_back({"matvec2", "dsp16", config});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrix, ::testing::ValuesIn(matrixCases()),
    [](const auto& info) {
      return info.param.block + "_" + info.param.machine + "_" +
             info.param.config;
    });

// The new workloads also hold the quality invariant on the big machine:
// the MAC-capable dsp16 should never need more instructions for the MAC-
// heavy blocks than MAC-less arch1.
TEST(ConfigMatrix, MacMachineBeatsPlainMachineOnMacKernels) {
  for (const char* block : {"ex2", "biquad"}) {
    const BlockDag dag = loadBlock(block);
    const Machine plain = loadMachine("arch1");
    const Machine macy = loadMachine("dsp16");
    CodeGenerator plainGen(plain);
    CodeGenerator macGen(macy);
    const int plainSize = plainGen.compileBlock(dag).numInstructions();
    const int macSize = macGen.compileBlock(dag).numInstructions();
    EXPECT_LE(macSize, plainSize) << block;
  }
}

}  // namespace
}  // namespace aviv
