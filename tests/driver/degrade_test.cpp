// Graceful-degradation tests for the driver: when the covering flow runs
// out of deadline budget (or trips a recoverable internal fault), the
// compile must fall back to the sequential baseline and still produce
// valid, simulatable code — bit-identical to driving the baseline pipeline
// by hand — and such results must never poison the result cache.
#include <gtest/gtest.h>

#include <filesystem>

#include "asmgen/encode.h"
#include "baseline/sequential.h"
#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "regalloc/peephole.h"
#include "regalloc/regalloc.h"
#include "service/cache.h"
#include "sim/simulator.h"
#include "support/deadline.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

class DegradeTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().clear(); }
};

// An expired budget before any covering completed must yield exactly what
// the baseline pipeline (sequential codegen + peephole + regalloc + encode)
// produces when driven by hand.
TEST_F(DegradeTest, DeadlineExpiryFallsBackToBaselineBitIdentical) {
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");

  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.timeLimitSeconds = 1e-9;  // expires before any covering
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  EXPECT_TRUE(block.degraded);
  EXPECT_FALSE(block.fromCache);
  EXPECT_GT(block.numInstructions(), 0);

  const MachineDatabases dbs(machine);
  BaselineResult manual = sequentialCodegen(dag, machine, dbs, options.core);
  peepholeOptimize(manual.graph, manual.schedule, dbs.constraints);
  const RegAssignment regs = allocateRegisters(manual.graph, manual.schedule);
  SymbolTable manualSymbols;
  const CodeImage manualImage =
      encodeBlock(manual.graph, manual.schedule, regs, manualSymbols);
  EXPECT_EQ(block.image.asmText(machine), manualImage.asmText(machine));
}

TEST_F(DegradeTest, DegradedCodeSimulatesCorrectly) {
  const Machine machine = loadMachine("arch2");
  const BlockDag dag = loadBlock("biquad");
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.timeLimitSeconds = 1e-9;
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  ASSERT_TRUE(block.degraded);

  const Simulator sim(machine);
  Rng rng(20260806);
  for (int trial = 0; trial < 5; ++trial) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : dag.inputNames())
      inputs[name] = rng.intIn(-100, 100);
    EXPECT_EQ(sim.runBlockFresh(block.image, symbols, inputs),
              evalDagOutputs(dag, inputs));
  }
}

TEST_F(DegradeTest, FallbackDisabledThrowsDeadlineExceeded) {
  DriverOptions options;
  options.core.timeLimitSeconds = 1e-9;
  options.baselineFallback = false;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  EXPECT_THROW((void)generator.compileBlock(loadBlock("ex1"), symbols),
               DeadlineExceeded);
}

TEST_F(DegradeTest, InternalFaultFallsBackToBaseline) {
  // The cover-internal fail point stands in for any recoverable invariant
  // failure inside the covering flow (AVIV_REQUIRE).
  FailPoints::instance().configure("cover-internal:1:1");
  DriverOptions options;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const BlockDag dag = loadBlock("ex1");
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  EXPECT_TRUE(block.degraded);
  EXPECT_GT(block.numInstructions(), 0);

  // The fault was one-shot: the next compile takes the normal path.
  SymbolTable symbols2;
  const CompiledBlock healthy = generator.compileBlock(dag, symbols2);
  EXPECT_FALSE(healthy.degraded);
}

TEST_F(DegradeTest, InternalFaultWithFallbackDisabledThrows) {
  FailPoints::instance().configure("cover-internal:1:1");
  DriverOptions options;
  options.baselineFallback = false;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  EXPECT_THROW((void)generator.compileBlock(loadBlock("ex1"), symbols),
               InternalError);
}

TEST_F(DegradeTest, DegradedResultsAreNeverCached) {
  const auto dir = (fs::temp_directory_path() / "aviv_degrade_cache").string();
  fs::remove_all(dir);
  CacheConfig cacheConfig;
  cacheConfig.dir = dir;
  auto cache = std::make_shared<ResultCache>(cacheConfig);

  DriverOptions options;
  options.core.timeLimitSeconds = 1e-9;
  options.cache = cache;
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");
  {
    CodeGenerator generator(machine, options);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    ASSERT_TRUE(block.degraded);
  }
  EXPECT_EQ(cache->stats().stores, 0)
      << "a degraded result must not be stored";

  // A warm generator with the same key still recompiles (and, degraded
  // again, still refuses to cache).
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock again = generator.compileBlock(dag, symbols);
  EXPECT_TRUE(again.degraded);
  EXPECT_FALSE(again.fromCache);
  EXPECT_EQ(cache->stats().hits, 0);
  fs::remove_all(dir);
}

TEST_F(DegradeTest, UnlimitedBudgetNeverDegrades) {
  DriverOptions options;  // timeLimitSeconds = 0: unarmed deadline
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(loadBlock("ex1"), symbols);
  EXPECT_FALSE(block.degraded);
  EXPECT_FALSE(block.core.stats.timedOut);
}

TEST_F(DegradeTest, ProgramCompileDegradesPerBlock) {
  // Multi-block programs take the compileProgram path; every block of a
  // budget-starved program compile must degrade, and the program must
  // still simulate end to end.
  const Machine machine = loadMachine("arch1");
  const Program program = parseProgram(R"(
    block first {
      input a, b;
      output t;
      t = a * b;
    }
    block second {
      input t, c;
      output y;
      y = t + c;
      return;
    }
  )",
                                       "degraded-straight");
  DriverOptions options;
  options.core.timeLimitSeconds = 1e-9;
  CodeGenerator generator(machine, options);
  const CompiledProgram compiled = generator.compileProgram(program);
  for (const CompiledBlock& block : compiled.blocks)
    EXPECT_TRUE(block.degraded);
  const auto result =
      simulateProgram(machine, compiled, {{"a", 6}, {"b", 7}, {"c", 8}});
  EXPECT_EQ(result.at("y"), 50);
}

}  // namespace
}  // namespace aviv
