// End-to-end pipeline tests: for every shipped block × machine × register
// configuration, the code AVIV emits must simulate to exactly the values the
// reference DAG interpreter computes — the strongest correctness property in
// DESIGN.md.
#include <gtest/gtest.h>

#include "driver/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace aviv {
namespace {

std::map<std::string, int64_t> randomInputs(const BlockDag& dag, Rng& rng) {
  std::map<std::string, int64_t> inputs;
  for (const std::string& name : dag.inputNames())
    inputs[name] = rng.intIn(-1000, 1000);
  return inputs;
}

void expectBlockCorrect(const BlockDag& dag, const Machine& machine,
                        const DriverOptions& options, int trials = 10) {
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  const Simulator sim(machine);
  Rng rng(0xC0FFEE ^ dag.size());
  for (int t = 0; t < trials; ++t) {
    const auto inputs = randomInputs(dag, rng);
    const auto expected = evalDagOutputs(dag, inputs);
    const auto actual = sim.runBlockFresh(block.image, symbols, inputs);
    ASSERT_EQ(actual, expected)
        << dag.name() << " on " << machine.name() << "\n"
        << block.image.asmText(machine);
  }
}

struct PipelineCase {
  std::string block;
  std::string machine;
  int regs;
};

class PipelineCorrectness : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineCorrectness, SimulationMatchesReference) {
  const PipelineCase& param = GetParam();
  const BlockDag dag = loadBlock(param.block);
  const Machine machine =
      loadMachine(param.machine).withRegisterCount(param.regs);
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  expectBlockCorrect(dag, machine, options);
}

std::vector<PipelineCase> allCases() {
  std::vector<PipelineCase> cases;
  for (const char* machine : {"arch1", "arch2", "arch3", "arch4"}) {
    for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
      for (int regs : {2, 4}) cases.push_back({block, machine, regs});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBlocksMachinesRegs, PipelineCorrectness,
                         ::testing::ValuesIn(allCases()),
                         [](const auto& info) {
                           return info.param.block + "_" + info.param.machine +
                                  "_r" + std::to_string(info.param.regs);
                         });

TEST(Pipeline, DeterministicOutput) {
  // The whole flow is deterministic: compiling twice yields bit-identical
  // listings (EXPERIMENTS.md relies on this).
  const BlockDag dag = loadBlock("ex4");
  const Machine machine = loadMachine("arch1");
  CodeGenerator g1(machine);
  CodeGenerator g2(machine);
  SymbolTable s1;
  SymbolTable s2;
  EXPECT_EQ(g1.compileBlock(dag, s1).image.asmText(machine),
            g2.compileBlock(dag, s2).image.asmText(machine));
}

TEST(Pipeline, StatsSecondsAndCountsPopulated) {
  const BlockDag dag = loadBlock("ex2");
  const Machine machine = loadMachine("arch1");
  CodeGenerator generator(machine);
  const CompiledBlock compiled = generator.compileBlock(dag);
  EXPECT_EQ(compiled.core.stats.irNodes, 13u);
  EXPECT_GT(compiled.core.stats.sndNodes, 13u);
  EXPECT_GT(compiled.core.stats.cover.cliquesGenerated, 0u);
  EXPECT_GE(compiled.peephole.instructionsSaved, 0);
}

TEST(Pipeline, QuickSingleBlock) {
  const BlockDag dag = parseBlock(R"(
    block tiny {
      input a, b;
      output y;
      y = (a + b) * (a - b);
    }
  )");
  expectBlockCorrect(dag, loadMachine("arch1"), DriverOptions{});
}

}  // namespace
}  // namespace aviv
