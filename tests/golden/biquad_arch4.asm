; block biquad on Arch4 — 14 instructions
i0: { DB: mov RF2.r1, DM[6]{b1} }
i1: { DB: mov RF2.r0, DM[1]{x1} }
i2: { U2: mul RF2.r2, RF2.r1, RF2.r0 | DB: mov RF2.r1, DM[5]{b0} }
i3: { DB: mov RF2.r0, DM[0]{x} }
i4: { U2: mac RF2.r2, RF2.r1, RF2.r0, RF2.r2 | DB: mov RF2.r1, DM[7]{b2} }
i5: { DB: mov RF2.r0, DM[2]{x2} }
i6: { U2: mac RF2.r2, RF2.r1, RF2.r0, RF2.r2 | DB: mov RF2.r1, DM[8]{a1} }
i7: { DB: mov RF3.r1, DM[9]{a2} }
i8: { DB: mov RF3.r0, DM[4]{y2} }
i9: { U3: mul RF3.r0, RF3.r1, RF3.r0 | DB: mov RF2.r0, DM[3]{y1} }
i10: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DB: mov RF1.r2, DM[0]{x} }
i11: { U2: sub RF2.r1, RF2.r2, RF2.r0 | DB: mov RF2.r0, RF3.r0 }
i12: { U2: sub RF2.r0, RF2.r1, RF2.r0 | DB: mov RF1.r1, DM[1]{x1} }
i13: { DB: mov RF1.r0, DM[3]{y1} }
; output x1n in RF1.r2
; output x2n in RF1.r1
; output y in RF2.r0
; output y1n in RF2.r0
; output y2n in RF1.r0
