; block ex1 on Arch2 — 6 instructions
i0: { DB: mov RF2.r0, DM[0]{a} }
i1: { DB: mov RF2.r1, DM[1]{b} }
i2: { U2: add RF2.r2, RF2.r0, RF2.r1 | DB: mov RF2.r0, DM[2]{c} }
i3: { U2: mul RF2.r2, RF2.r2, RF2.r0 | DB: mov RF2.r0, DM[3]{d} }
i4: { U2: add RF2.r0, RF2.r0, RF2.r2 }
i5: { U2: sub RF2.r0, RF2.r0, RF2.r1 }
; output y in RF2.r0
