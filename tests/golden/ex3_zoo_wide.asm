; block ex3 on FzWide_0007e8 — 7 instructions
i0: { B0: mov RF0.r0, DM[1]{a0} | B0: mov RF0.r2, DM[2]{b0} }
i1: { U0: add RF0.r0, RF0.r0, RF0.r2 | B0: mov RF1.r2, DM[0]{k} | B0: mov RF1.r1, DM[3]{a1} }
i2: { B1: mov RF1.r3, RF0.r0 | B0: mov RF1.r0, DM[4]{b1} | B0: mov RF0.r0, DM[4]{b1} }
i3: { U5: mul RF1.r1, RF1.r3, RF1.r2 | U3: add RF1.r0, RF1.r1, RF1.r0 }
i4: { U5: mul RF1.r0, RF1.r0, RF1.r2 | B1: mov RF0.r1, RF1.r1 }
i5: { U2: sub RF0.r2, RF0.r1, RF0.r2 | B1: mov RF0.r1, RF1.r0 }
i6: { U2: sub RF0.r0, RF0.r1, RF0.r0 }
; output y0 in RF0.r2
; output y1 in RF0.r0
