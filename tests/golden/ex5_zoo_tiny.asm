; block ex5 on FzTiny_0007e8 — 32 instructions
i0: { B0: mov RF2.r0, DM[0]{ar} }
i1: { B0: mov RF2.r2, DM[2]{br} }
i2: { B0: mov RF0.r0, DM[4]{cr} }
i3: { B0: mov RF0.r2, DM[5]{ci} }
i4: { B0: mov RF2.r1, DM[4]{cr} }
i5: { B0: mov DM[80]{spill6}, RF2.r1 }
i6: { B0: mov RF2.r1, DM[80]{spill6} }
i7: { U2: mul RF2.r0, RF2.r0, RF2.r2 | B0: mov DM[81]{spill7}, RF2.r0 }
i8: { B0: mov DM[74]{spill0}, RF2.r0 }
i9: { B0: mov RF2.r0, DM[1]{ai} }
i10: { U2: mul RF2.r2, RF2.r0, RF2.r2 | B0: mov RF1.r1, DM[74]{scratch0} }
i11: { B0: mov DM[77]{spill3}, RF2.r2 }
i12: { B0: mov RF2.r2, DM[3]{bi} }
i13: { U2: mul RF2.r0, RF2.r0, RF2.r2 | B0: mov RF0.r1, DM[77]{scratch3} }
i14: { B0: mov DM[75]{spill1}, RF2.r0 }
i15: { B0: mov RF2.r0, DM[81]{spill7} }
i16: { U2: mul RF2.r0, RF2.r0, RF2.r2 | B0: mov RF1.r0, DM[75]{scratch1} }
i17: { U1: sub RF1.r0, RF1.r1, RF1.r0 | B0: mov DM[76]{spill2}, RF2.r0 }
i18: { B0: mov DM[78]{spill4}, RF1.r0 }
i19: { B0: mov DM[82]{spill8}, RF0.r1 }
i20: { B0: mov RF0.r1, DM[76]{scratch2} }
i21: { B0: mov DM[83]{spill9}, RF0.r1 }
i22: { B0: mov RF0.r1, DM[78]{scratch4} }
i23: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r0, DM[83]{spill9} }
i24: { B0: mov DM[84]{spill10}, RF0.r2 }
i25: { B0: mov RF0.r2, DM[82]{spill8} }
i26: { U0: add RF0.r2, RF0.r0, RF0.r2 | B0: mov RF0.r0, DM[84]{spill10} }
i27: { U0: add RF0.r2, RF0.r2, RF0.r0 }
i28: { U0: add RF0.r0, RF0.r1, RF0.r2 }
i29: { B0: mov DM[79]{spill5}, RF0.r0 }
i30: { B0: mov RF2.r0, DM[79]{scratch5} }
i31: { U2: mul RF2.r0, RF2.r0, RF2.r1 }
; output e in RF2.r0
; output yi in RF0.r2
; output yr in RF0.r1
