; block ex4 on Dsp16 — 8 instructions
i0: { YB: mov RM.r1, DM[1]{a0} | XB: mov RA.r1, DM[3]{a1} }
i1: { YB: mov RM.r3, DM[0]{k} | XB: mov RA.r0, DM[4]{b1} }
i2: { ALU0: sub RA.r0, RA.r1, RA.r0 | YB: mov RM.r0, DM[2]{b0} | XB: mov RB.r1, DM[1]{a0} }
i3: { MACU: mac RM.r2, RM.r1, RM.r3, RM.r0 | XB: mov RB.r0, DM[2]{b0} | YB: mov RM.r1, DM[3]{a1} }
i4: { ALU1: sub RB.r0, RB.r1, RB.r0 | YB: mov RM.r0, DM[4]{b1} | XB: mov DM[511]{spill0}, RA.r0 }
i5: { MACU: mac RM.r1, RM.r1, RM.r3, RM.r0 | YB: mov RM.r0, RB.r0 }
i6: { MACU: mac RM.r2, RM.r2, RM.r0, RM.r3 | YB: mov RM.r0, DM[511]{scratch0} }
i7: { MACU: mac RM.r0, RM.r1, RM.r0, RM.r3 }
; output y0 in RM.r2
; output y1 in RM.r0
