ERROR: no functional unit of machine 'Arch3' implements COMPL (required by n7:COMPL(n6) in block 'fig6')
