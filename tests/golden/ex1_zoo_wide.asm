; block ex1 on FzWide_0007e8 — 4 instructions
i0: { B0: mov RF0.r0, DM[0]{a} | B0: mov RF0.r2, DM[1]{b} }
i1: { U0: add RF0.r3, RF0.r0, RF0.r2 | B0: mov RF0.r1, DM[2]{c} | B0: mov RF0.r0, DM[3]{d} }
i2: { U2: mac RF0.r0, RF0.r3, RF0.r1, RF0.r0 }
i3: { U2: sub RF0.r0, RF0.r0, RF0.r2 }
; output y in RF0.r0
