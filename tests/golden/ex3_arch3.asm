; block ex3 on Arch3 — 6 instructions
i0: { DBB: mov RF3.r1, DM[1]{a0} | DBA: mov RF2.r0, DM[3]{a1} }
i1: { DBB: mov RF3.r0, DM[2]{b0} | DBA: mov RF2.r1, DM[4]{b1} }
i2: { U3: add RF3.r1, RF3.r1, RF3.r0 | U2: add RF2.r2, RF2.r0, RF2.r1 | DBB: mov RF3.r0, DM[0]{k} | DBA: mov RF2.r0, DM[0]{k} }
i3: { U3: mul RF3.r0, RF3.r1, RF3.r0 | U2: mul RF2.r0, RF2.r2, RF2.r0 | DBA: mov RF2.r2, DM[2]{b0} }
i4: { U2: sub RF2.r0, RF2.r0, RF2.r1 | DBB: mov RF2.r1, RF3.r0 }
i5: { U2: sub RF2.r1, RF2.r1, RF2.r2 }
; output y0 in RF2.r1
; output y1 in RF2.r0
