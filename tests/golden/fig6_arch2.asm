; block fig6 on Arch2 — 8 instructions
i0: { DB: mov RF1.r1, DM[0]{a} }
i1: { DB: mov RF1.r0, DM[1]{b} }
i2: { U1: add RF1.r0, RF1.r1, RF1.r0 | DB: mov RF2.r1, DM[2]{c} }
i3: { DB: mov RF2.r0, DM[3]{d} }
i4: { U2: mul RF2.r1, RF2.r1, RF2.r0 | DB: mov RF2.r0, RF1.r0 }
i5: { U2: sub RF2.r0, RF2.r0, RF2.r1 }
i6: { DB: mov RF1.r0, RF2.r0 }
i7: { U1: compl RF1.r0, RF1.r0 }
; output y in RF1.r0
