; block ex2 on FzTiny_0007e8 — 14 instructions
i0: { B0: mov RF2.r1, DM[1]{x0} }
i1: { B0: mov RF2.r0, DM[2]{c0} }
i2: { U2: mul RF2.r2, RF2.r1, RF2.r0 | B0: mov RF2.r1, DM[3]{x1} }
i3: { B0: mov RF2.r0, DM[4]{c1} }
i4: { U2: mul RF2.r2, RF2.r1, RF2.r0 | B0: mov DM[82]{spill0}, RF2.r2 }
i5: { B0: mov RF2.r1, DM[5]{x2} }
i6: { B0: mov RF2.r0, DM[6]{c2} }
i7: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov RF0.r1, DM[0]{acc} }
i8: { B0: mov RF0.r0, DM[82]{scratch0} }
i9: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov DM[83]{spill1}, RF2.r2 }
i10: { B0: mov RF0.r0, DM[83]{scratch1} }
i11: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov DM[84]{spill2}, RF2.r0 }
i12: { B0: mov RF0.r0, DM[84]{scratch2} }
i13: { U0: add RF0.r0, RF0.r1, RF0.r0 }
; output y in RF0.r0
