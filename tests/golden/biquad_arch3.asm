; block biquad on Arch3 — 12 instructions
i0: { DBB: mov RF3.r1, DM[7]{b2} | DBA: mov RF2.r1, DM[8]{a1} }
i1: { DBB: mov RF3.r0, DM[2]{x2} | DBA: mov RF2.r0, DM[3]{y1} }
i2: { U3: mul RF3.r0, RF3.r1, RF3.r0 | U2: mul RF2.r2, RF2.r1, RF2.r0 | DBB: mov RF3.r2, DM[5]{b0} | DBA: mov RF2.r1, DM[9]{a2} }
i3: { DBB: mov RF3.r1, DM[0]{x} | DBA: mov RF2.r0, DM[4]{y2} }
i4: { U3: mul RF3.r3, RF3.r2, RF3.r1 | U2: mul RF2.r0, RF2.r1, RF2.r0 | DBB: mov RF3.r2, DM[6]{b1} | DBA: mov RF1.r2, DM[0]{x} }
i5: { DBB: mov RF3.r1, DM[1]{x1} | DBA: mov RF1.r1, DM[1]{x1} }
i6: { U3: mul RF3.r1, RF3.r2, RF3.r1 | DBA: mov RF1.r0, DM[3]{y1} }
i7: { U3: add RF3.r1, RF3.r3, RF3.r1 }
i8: { U3: add RF3.r0, RF3.r1, RF3.r0 }
i9: { DBB: mov RF2.r1, RF3.r0 }
i10: { U2: sub RF2.r1, RF2.r1, RF2.r2 }
i11: { U2: sub RF2.r0, RF2.r1, RF2.r0 }
; output x1n in RF1.r2
; output x2n in RF1.r1
; output y in RF2.r0
; output y1n in RF2.r0
; output y2n in RF1.r0
