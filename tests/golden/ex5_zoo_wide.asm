; block ex5 on FzWide_0007e8 — 7 instructions
i0: { B0: mov RF1.r5, DM[0]{ar} | B0: mov RF1.r1, DM[2]{br} }
i1: { U5: mul RF1.r2, RF1.r5, RF1.r1 | B0: mov RF1.r0, DM[1]{ai} | B0: mov RF1.r3, DM[3]{bi} }
i2: { U1: msu RF1.r4, RF1.r0, RF1.r3, RF1.r2 | U5: mul RF1.r1, RF1.r0, RF1.r1 | B0: mov RF1.r2, DM[4]{cr} | B0: mov RF1.r0, DM[5]{ci} }
i3: { U1: mac RF1.r1, RF1.r5, RF1.r3, RF1.r1 | U3: add RF1.r3, RF1.r4, RF1.r2 }
i4: { U3: add RF1.r1, RF1.r1, RF1.r0 }
i5: { U3: add RF1.r0, RF1.r3, RF1.r1 }
i6: { U5: mul RF1.r0, RF1.r0, RF1.r2 }
; output e in RF1.r0
; output yi in RF1.r1
; output yr in RF1.r3
