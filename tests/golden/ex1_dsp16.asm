; block ex1 on Dsp16 — 7 instructions
i0: { YB: mov RM.r1, DM[2]{c} | XB: mov RB.r0, DM[1]{b} }
i1: { YB: mov RM.r2, DM[0]{a} }
i2: { YB: mov RM.r0, DM[1]{b} }
i3: { MACU: add RM.r2, RM.r2, RM.r0 | YB: mov RM.r0, DM[3]{d} }
i4: { MACU: mac RM.r0, RM.r2, RM.r1, RM.r0 }
i5: { YB: mov RB.r1, RM.r0 }
i6: { ALU1: sub RB.r0, RB.r1, RB.r0 }
; output y in RB.r0
