; block ex2 on Dsp16 — 8 instructions
i0: { YB: mov RM.r2, DM[1]{x0} }
i1: { YB: mov RM.r1, DM[2]{c0} }
i2: { YB: mov RM.r0, DM[0]{acc} }
i3: { MACU: mac RM.r2, RM.r2, RM.r1, RM.r0 | YB: mov RM.r1, DM[3]{x1} }
i4: { YB: mov RM.r0, DM[4]{c1} }
i5: { MACU: mac RM.r2, RM.r1, RM.r0, RM.r2 | YB: mov RM.r1, DM[5]{x2} }
i6: { YB: mov RM.r0, DM[6]{c2} }
i7: { MACU: mac RM.r0, RM.r1, RM.r0, RM.r2 }
; output y in RM.r0
