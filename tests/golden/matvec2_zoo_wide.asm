; block matvec2 on FzWide_0007e8 — 7 instructions
i0: { B0: mov RF1.r0, DM[1]{m01} | B0: mov RF1.r1, DM[5]{v1} }
i1: { U5: mul RF1.r2, RF1.r0, RF1.r1 | B0: mov RF1.r0, DM[0]{m00} | B0: mov RF1.r4, DM[4]{v0} }
i2: { U1: mac RF1.r5, RF1.r0, RF1.r4, RF1.r2 | B0: mov RF1.r0, DM[3]{m11} | B0: mov RF1.r2, DM[2]{m10} }
i3: { U5: mul RF1.r3, RF1.r0, RF1.r1 | B0: mov RF1.r0, DM[7]{hi} | B0: mov RF1.r1, DM[6]{lo} }
i4: { U1: mac RF1.r3, RF1.r2, RF1.r4, RF1.r3 | U3: min RF1.r2, RF1.r5, RF1.r0 }
i5: { U1: max RF1.r2, RF1.r2, RF1.r1 | U3: min RF1.r0, RF1.r3, RF1.r0 }
i6: { U5: max RF1.r0, RF1.r0, RF1.r1 }
; output r0 in RF1.r2
; output r1 in RF1.r0
