; block ex3 on Dsp16 — 7 instructions
i0: { YB: mov RM.r1, DM[1]{a0} | XB: mov RB.r0, DM[3]{a1} }
i1: { YB: mov RM.r0, DM[2]{b0} | XB: mov RB.r1, DM[4]{b1} }
i2: { MACU: add RM.r0, RM.r1, RM.r0 | ALU1: add RB.r0, RB.r0, RB.r1 | YB: mov RM.r1, DM[0]{k} | XB: mov RA.r0, DM[2]{b0} }
i3: { MACU: mul RM.r2, RM.r0, RM.r1 | YB: mov RM.r0, RB.r0 }
i4: { MACU: mul RM.r0, RM.r0, RM.r1 | YB: mov DM[511]{spill0}, RM.r2 }
i5: { XB: mov RA.r1, DM[511]{scratch0} | YB: mov RB.r0, RM.r0 }
i6: { ALU0: sub RA.r0, RA.r1, RA.r0 | ALU1: sub RB.r0, RB.r0, RB.r1 }
; output y0 in RA.r0
; output y1 in RB.r0
