; block fig6 on FzWide_0007e8 — 4 instructions
i0: { B0: mov RF0.r1, DM[0]{a} | B0: mov RF0.r0, DM[1]{b} }
i1: { U0: add RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[2]{c} | B0: mov RF0.r0, DM[3]{d} }
i2: { U0: msu RF0.r0, RF0.r1, RF0.r0, RF0.r2 }
i3: { U0: compl RF0.r0, RF0.r0 }
; output y in RF0.r0
