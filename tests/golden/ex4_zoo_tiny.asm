; block ex4 on FzTiny_0007e8 — 27 instructions
i0: { B0: mov RF2.r0, DM[1]{a0} }
i1: { B0: mov RF2.r1, DM[0]{k} }
i2: { U2: mul RF2.r2, RF2.r0, RF2.r1 | B0: mov RF2.r0, DM[3]{a1} }
i3: { U2: mul RF2.r0, RF2.r0, RF2.r1 | B0: mov DM[77]{spill0}, RF2.r2 }
i4: { B0: mov DM[81]{spill4}, RF2.r0 }
i5: { B0: mov RF0.r0, DM[2]{b0} }
i6: { B0: mov RF0.r1, DM[77]{scratch0} }
i7: { U0: add RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[81]{scratch4} }
i8: { B0: mov RF0.r0, DM[4]{b1} }
i9: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov DM[78]{spill1}, RF0.r2 }
i10: { B0: mov RF1.r1, DM[1]{a0} }
i11: { B0: mov RF1.r0, DM[2]{b0} }
i12: { U1: sub RF1.r2, RF1.r1, RF1.r0 | B0: mov RF1.r1, DM[3]{a1} }
i13: { B0: mov RF1.r0, DM[4]{b1} }
i14: { U1: sub RF1.r0, RF1.r1, RF1.r0 | B0: mov DM[79]{spill2}, RF1.r2 }
i15: { B0: mov DM[82]{spill5}, RF0.r0 }
i16: { B0: mov DM[83]{spill6}, RF1.r0 }
i17: { B0: mov RF2.r0, DM[79]{scratch2} }
i18: { B0: mov RF2.r1, DM[78]{scratch1} }
i19: { U2: mul RF2.r2, RF2.r1, RF2.r0 | B0: mov RF2.r1, DM[82]{scratch5} }
i20: { B0: mov RF2.r0, DM[83]{scratch6} }
i21: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov DM[80]{spill3}, RF2.r2 }
i22: { B0: mov DM[84]{spill7}, RF2.r0 }
i23: { B0: mov RF0.r0, DM[80]{scratch3} }
i24: { B0: mov RF0.r2, DM[0]{k} }
i25: { U0: add RF0.r1, RF0.r0, RF0.r2 | B0: mov RF0.r0, DM[84]{scratch7} }
i26: { U0: add RF0.r0, RF0.r0, RF0.r2 }
; output y0 in RF0.r1
; output y1 in RF0.r0
