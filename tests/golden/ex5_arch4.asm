; block ex5 on Arch4 — 15 instructions
i0: { DB: mov RF3.r1, DM[0]{ar} }
i1: { DB: mov RF3.r0, DM[3]{bi} }
i2: { U3: mul RF3.r3, RF3.r1, RF3.r0 | DB: mov RF3.r0, DM[5]{ci} }
i3: { DB: mov RF3.r2, DM[1]{ai} }
i4: { DB: mov RF3.r1, DM[2]{br} }
i5: { U3: mul RF3.r1, RF3.r2, RF3.r1 | DB: mov RF2.r2, DM[4]{cr} }
i6: { U3: add RF3.r1, RF3.r3, RF3.r1 | DB: mov RF2.r1, DM[0]{ar} }
i7: { U3: add RF3.r0, RF3.r1, RF3.r0 | DB: mov RF2.r0, DM[2]{br} }
i8: { U2: mul RF2.r1, RF2.r1, RF2.r0 | DB: mov RF2.r3, DM[1]{ai} }
i9: { DB: mov RF2.r0, DM[3]{bi} }
i10: { U2: mul RF2.r3, RF2.r3, RF2.r0 | DB: mov RF2.r0, RF3.r0 }
i11: { U2: sub RF2.r1, RF2.r1, RF2.r3 }
i12: { U2: add RF2.r1, RF2.r1, RF2.r2 }
i13: { U2: add RF2.r0, RF2.r1, RF2.r0 }
i14: { U2: mul RF2.r0, RF2.r0, RF2.r2 }
; output e in RF2.r0
; output yi in RF3.r0
; output yr in RF2.r1
