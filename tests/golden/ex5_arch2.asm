; block ex5 on Arch2 — 12 instructions
i0: { DB: mov RF2.r3, DM[2]{br} }
i1: { DB: mov RF2.r1, DM[1]{ai} }
i2: { U2: mul RF2.r0, RF2.r1, RF2.r3 | DB: mov RF2.r2, DM[0]{ar} }
i3: { U2: mul RF2.r3, RF2.r2, RF2.r3 | DB: mov RF1.r1, RF2.r0 }
i4: { DB: mov RF2.r0, DM[3]{bi} }
i5: { U2: mul RF2.r2, RF2.r2, RF2.r0 | DB: mov RF1.r0, DM[5]{ci} }
i6: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DB: mov RF1.r2, RF2.r2 }
i7: { U2: sub RF2.r0, RF2.r3, RF2.r0 | U1: add RF1.r1, RF1.r2, RF1.r1 | DB: mov RF2.r2, DM[4]{cr} }
i8: { U2: add RF2.r1, RF2.r0, RF2.r2 | U1: add RF1.r0, RF1.r1, RF1.r0 }
i9: { DB: mov RF2.r0, RF1.r0 }
i10: { U2: add RF2.r0, RF2.r1, RF2.r0 }
i11: { U2: mul RF2.r0, RF2.r0, RF2.r2 }
; output e in RF2.r0
; output yi in RF1.r0
; output yr in RF2.r1
