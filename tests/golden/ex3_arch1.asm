; block ex3 on Arch1 — 8 instructions
i0: { DB: mov RF2.r1, DM[1]{a0} }
i1: { DB: mov RF2.r0, DM[2]{b0} }
i2: { U2: add RF2.r0, RF2.r1, RF2.r0 | DB: mov RF2.r2, DM[0]{k} }
i3: { U2: mul RF2.r3, RF2.r0, RF2.r2 | DB: mov RF2.r0, DM[3]{a1} }
i4: { DB: mov RF2.r1, DM[4]{b1} }
i5: { U2: add RF2.r0, RF2.r0, RF2.r1 | DB: mov RF1.r1, RF2.r3 }
i6: { U2: mul RF2.r0, RF2.r0, RF2.r2 | DB: mov RF1.r0, DM[2]{b0} }
i7: { U1: sub RF1.r0, RF1.r1, RF1.r0 | U2: sub RF2.r0, RF2.r0, RF2.r1 }
; output y0 in RF1.r0
; output y1 in RF2.r0
