; block ex3 on FzAsym_0007e8 — 17 instructions
i0: { BX: mov RF0.r1, DM[1]{a0} }
i1: { BX: mov RF0.r0, DM[2]{b0} }
i2: { U0: add RF0.r0, RF0.r1, RF0.r0 | BX: mov RF0.r2, DM[0]{k} }
i3: { U6: mul RF0.r3, RF0.r0, RF0.r2 | BX: mov RF0.r1, DM[3]{a1} }
i4: { BX: mov RF0.r0, DM[4]{b1} }
i5: { U0: add RF0.r0, RF0.r1, RF0.r0 | BX: mov RF0.r1, DM[2]{b0} }
i6: { U6: mul RF0.r0, RF0.r0, RF0.r2 | BX: mov RF1.r0, RF0.r3 }
i7: { BY: mov RF2.r0, RF1.r0 | BX: mov RF1.r0, RF0.r0 }
i8: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i9: { BX: mov RF1.r0, RF0.r1 }
i10: { BY: mov RF2.r1, RF1.r0 | BX: mov RF0.r0, DM[4]{b1} }
i11: { BX: mov RF3.r0, RF2.r1 }
i12: { U3: sub RF3.r2, RF3.r1, RF3.r0 | BX: mov RF3.r1, RF2.r0 }
i13: { BX: mov RF1.r0, RF0.r0 }
i14: { BY: mov RF2.r0, RF1.r0 }
i15: { BX: mov RF3.r0, RF2.r0 }
i16: { U3: sub RF3.r0, RF3.r1, RF3.r0 }
; output y0 in RF3.r2
; output y1 in RF3.r0
