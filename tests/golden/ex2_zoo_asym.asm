; block ex2 on FzAsym_0007e8 — 8 instructions
i0: { BX: mov RF0.r2, DM[1]{x0} }
i1: { BX: mov RF0.r1, DM[2]{c0} }
i2: { BX: mov RF0.r0, DM[0]{acc} }
i3: { U0: mac RF0.r2, RF0.r2, RF0.r1, RF0.r0 | BX: mov RF0.r1, DM[3]{x1} }
i4: { BX: mov RF0.r0, DM[4]{c1} }
i5: { U0: mac RF0.r2, RF0.r1, RF0.r0, RF0.r2 | BX: mov RF0.r1, DM[5]{x2} }
i6: { BX: mov RF0.r0, DM[6]{c2} }
i7: { U0: mac RF0.r0, RF0.r1, RF0.r0, RF0.r2 }
; output y in RF0.r0
