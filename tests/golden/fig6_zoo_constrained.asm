; block fig6 on FzCstr_0007e8 — 6 instructions
i0: { B0: mov RF0.r1, DM[0]{a} }
i1: { B0: mov RF0.r0, DM[1]{b} }
i2: { U0: add RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[2]{c} }
i3: { B0: mov RF0.r0, DM[3]{d} }
i4: { U0: msu RF0.r0, RF0.r1, RF0.r0, RF0.r2 }
i5: { U2: compl RF0.r0, RF0.r0 }
; output y in RF0.r0
