; block ex1 on FzMin_0007e8 — 6 instructions
i0: { B0: mov RF0.r0, DM[0]{a} }
i1: { B0: mov RF0.r1, DM[1]{b} }
i2: { U0: add RF0.r2, RF0.r0, RF0.r1 | B0: mov RF0.r0, DM[2]{c} }
i3: { U1: mul RF0.r2, RF0.r2, RF0.r0 | B0: mov RF0.r0, DM[3]{d} }
i4: { U0: add RF0.r0, RF0.r0, RF0.r2 }
i5: { U0: sub RF0.r0, RF0.r0, RF0.r1 }
; output y in RF0.r0
