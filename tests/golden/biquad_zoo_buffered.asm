; block biquad on FzBuf_0007e8 — 27 instructions
i0: { MP: mov B0.r0, DM[6]{b1} }
i1: { MP: mov B0.r1, DM[0]{x} | L0: mov B1.r0, B0.r0 }
i2: { MP: mov B0.r0, DM[5]{b0} | L0: mov B1.r0, B0.r1 | L1: mov B2.r1, B1.r0 }
i3: { L0: mov B1.r0, B0.r0 | L1: mov B2.r0, B1.r0 | MP: mov B0.r2, DM[1]{x1} }
i4: { L1: mov B2.r2, B1.r0 | L0: mov B1.r0, B0.r2 | MP: mov B0.r0, DM[7]{b2} }
i5: { U2: mul B2.r2, B2.r2, B2.r0 | L1: mov B2.r0, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov DM[10]{x1n}, B0.r1 }
i6: { U2: mul B2.r0, B2.r1, B2.r0 | L2: mov B3.r0, B2.r2 | L1: mov B2.r1, B1.r0 | MP: mov B0.r0, DM[2]{x2} }
i7: { L3: mov B0.r1, B3.r0 | L2: mov B3.r0, B2.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[8]{a1} }
i8: { L1: mov B2.r0, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[3]{y1} }
i9: { U2: mul B2.r0, B2.r1, B2.r0 | L3: mov B0.r2, B3.r0 | L1: mov B2.r1, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov DM[11]{x2n}, B0.r2 }
i10: { U0: add B0.r2, B0.r1, B0.r2 | L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 | MP: mov DM[12]{y2n}, B0.r0 }
i11: { U2: mul B2.r0, B2.r1, B2.r0 | L3: mov B0.r1, B3.r0 | MP: mov B0.r0, DM[9]{a2} }
i12: { U0: add B0.r1, B0.r2, B0.r1 | L2: mov B3.r0, B2.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[4]{y2} }
i13: { L0: mov B1.r1, B0.r1 | L3: mov B0.r1, B3.r0 | L1: mov B2.r1, B1.r0 }
i14: { L0: mov B1.r0, B0.r1 }
i15: { U1: sub B1.r1, B1.r1, B1.r0 | L0: mov B1.r0, B0.r0 }
i16: { L1: mov B2.r0, B1.r0 }
i17: { U2: mul B2.r0, B2.r1, B2.r0 }
i18: { L2: mov B3.r0, B2.r0 }
i19: { L3: mov B0.r0, B3.r0 }
i20: { L0: mov B1.r0, B0.r0 }
i21: { U1: sub B1.r0, B1.r1, B1.r0 }
i22: { L1: mov B2.r0, B1.r0 }
i23: { L1: mov B2.r0, B1.r0 | L2: mov B3.r0, B2.r0 }
i24: { L2: mov B3.r0, B2.r0 | L3: mov B0.r0, B3.r0 }
i25: { L3: mov B0.r0, B3.r0 | MP: mov DM[13]{y1n}, B0.r0 }
i26: { MP: mov DM[14]{y}, B0.r0 }
; output x1n in DM[0]
; output x2n in DM[1]
; output y in DM[14]
; output y1n in DM[13]
; output y2n in DM[3]
