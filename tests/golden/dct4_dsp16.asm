; block dct4 on Dsp16 — 11 instructions
i0: { YB: mov RL.r1, DM[1]{s1} | XB: mov RB.r1, DM[0]{s0} }
i1: { YB: mov RL.r0, DM[2]{s2} | XB: mov RB.r0, DM[3]{s3} }
i2: { LU: add RL.r1, RL.r1, RL.r0 | ALU1: sub RB.r2, RB.r1, RB.r0 | XB: mov RB.r1, DM[1]{s1} | YB: mov RM.r1, DM[5]{c2} }
i3: { XB: mov RB.r0, DM[2]{s2} | YB: mov DM[511]{spill1}, RL.r1 }
i4: { ALU1: sub RB.r0, RB.r1, RB.r0 | XB: mov RA.r2, DM[0]{s0} | YB: mov RM.r2, RB.r2 }
i5: { MACU: mul RM.r0, RM.r2, RM.r1 | XB: mov RA.r0, DM[511]{scratch1} | YB: mov RM.r3, RB.r0 }
i6: { MACU: mul RM.r4, RM.r3, RM.r1 | XB: mov RA.r1, DM[3]{s3} | YB: mov RM.r1, DM[4]{c1} }
i7: { ALU0: add RA.r1, RA.r2, RA.r1 | MACU: mac RM.r2, RM.r2, RM.r1, RM.r4 }
i8: { ALU0: sub RA.r0, RA.r1, RA.r0 | MACU: msu RM.r0, RM.r3, RM.r1, RM.r0 | XB: mov DM[510]{spill0}, RA.r1 }
i9: { YB: mov RL.r0, DM[510]{scratch0} }
i10: { LU: add RL.r0, RL.r0, RL.r1 }
; output t0 in RL.r0
; output t1 in RM.r2
; output t2 in RA.r0
; output t3 in RM.r0
