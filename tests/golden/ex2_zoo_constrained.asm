; block ex2 on FzCstr_0007e8 — 9 instructions
i0: { B0: mov RF0.r1, DM[1]{x0} }
i1: { B0: mov RF0.r0, DM[2]{c0} }
i2: { U2: mul RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r0, DM[0]{acc} }
i3: { U0: add RF0.r2, RF0.r0, RF0.r1 | B0: mov RF0.r1, DM[3]{x1} }
i4: { B0: mov RF0.r0, DM[4]{c1} }
i5: { U2: mul RF0.r0, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[5]{x2} }
i6: { U0: add RF0.r2, RF0.r2, RF0.r0 | B0: mov RF0.r0, DM[6]{c2} }
i7: { U2: mul RF0.r0, RF0.r1, RF0.r0 }
i8: { U0: add RF0.r0, RF0.r2, RF0.r0 }
; output y in RF0.r0
