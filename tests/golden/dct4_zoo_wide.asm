; block dct4 on FzWide_0007e8 — 6 instructions
i0: { B0: mov RF0.r1, DM[0]{s0} | B0: mov RF0.r0, DM[3]{s3} }
i1: { U0: add RF0.r3, RF0.r1, RF0.r0 | U2: sub RF0.r0, RF0.r1, RF0.r0 | B0: mov RF0.r2, DM[1]{s1} | B0: mov RF0.r1, DM[2]{s2} }
i2: { U0: add RF0.r1, RF0.r2, RF0.r1 | U2: sub RF0.r0, RF0.r2, RF0.r1 | B1: mov RF1.r2, RF0.r0 | B0: mov RF1.r3, DM[4]{c1} | B0: mov RF1.r0, DM[5]{c2} }
i3: { U0: add RF0.r1, RF0.r3, RF0.r1 | U2: sub RF0.r0, RF0.r3, RF0.r1 | U5: mul RF1.r4, RF1.r2, RF1.r3 | B1: mov RF1.r1, RF0.r0 }
i4: { U1: mac RF1.r2, RF1.r1, RF1.r0, RF1.r4 | U5: mul RF1.r0, RF1.r2, RF1.r0 }
i5: { U1: msu RF1.r0, RF1.r1, RF1.r3, RF1.r0 }
; output t0 in RF0.r1
; output t1 in RF1.r2
; output t2 in RF0.r0
; output t3 in RF1.r0
