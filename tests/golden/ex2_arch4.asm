; block ex2 on Arch4 — 8 instructions
i0: { DB: mov RF2.r2, DM[1]{x0} }
i1: { DB: mov RF2.r1, DM[2]{c0} }
i2: { DB: mov RF2.r0, DM[0]{acc} }
i3: { U2: mac RF2.r2, RF2.r2, RF2.r1, RF2.r0 | DB: mov RF2.r1, DM[3]{x1} }
i4: { DB: mov RF2.r0, DM[4]{c1} }
i5: { U2: mac RF2.r2, RF2.r1, RF2.r0, RF2.r2 | DB: mov RF2.r1, DM[5]{x2} }
i6: { DB: mov RF2.r0, DM[6]{c2} }
i7: { U2: mac RF2.r0, RF2.r1, RF2.r0, RF2.r2 }
; output y in RF2.r0
