; block ex4 on FzWide_0007e8 — 6 instructions
i0: { B0: mov RF0.r2, DM[3]{a1} | B0: mov RF0.r1, DM[4]{b1} }
i1: { U2: sub RF0.r0, RF0.r2, RF0.r1 | B0: mov RF0.r5, DM[1]{a0} | B0: mov RF0.r4, DM[2]{b0} }
i2: { U2: sub RF0.r3, RF0.r5, RF0.r4 | B0: mov RF0.r6, DM[0]{k} | B1: mov RF1.r1, RF0.r0 | B0: mov RF1.r0, DM[0]{k} }
i3: { U2: mac RF0.r0, RF0.r2, RF0.r6, RF0.r1 }
i4: { U2: mac RF0.r0, RF0.r5, RF0.r6, RF0.r4 | B1: mov RF1.r2, RF0.r0 }
i5: { U2: mac RF0.r0, RF0.r0, RF0.r3, RF0.r6 | U1: mac RF1.r0, RF1.r2, RF1.r1, RF1.r0 }
; output y0 in RF0.r0
; output y1 in RF1.r0
