; block dct4 on Arch1 — 16 instructions
i0: { DB: mov RF2.r1, DM[0]{s0} }
i1: { DB: mov RF2.r0, DM[3]{s3} }
i2: { U2: sub RF2.r0, RF2.r1, RF2.r0 | DB: mov RF2.r2, DM[5]{c2} }
i3: { U2: mul RF2.r1, RF2.r0, RF2.r2 | DB: mov RF1.r1, DM[0]{s0} }
i4: { DB: mov RF1.r0, DM[3]{s3} }
i5: { U1: add RF1.r2, RF1.r1, RF1.r0 | DB: mov RF2.r3, DM[1]{s1} }
i6: { DB: mov RF1.r1, DM[1]{s1} }
i7: { DB: mov RF1.r0, DM[2]{s2} }
i8: { U1: add RF1.r1, RF1.r1, RF1.r0 | DB: mov RF3.r1, RF2.r0 }
i9: { U1: sub RF1.r0, RF1.r2, RF1.r1 | DB: mov RF3.r0, DM[4]{c1} }
i10: { U3: mul RF3.r1, RF3.r1, RF3.r0 | DB: mov RF3.r2, RF1.r2 }
i11: { DB: mov RF2.r0, DM[2]{s2} }
i12: { U2: sub RF2.r3, RF2.r3, RF2.r0 | DB: mov RF2.r0, DM[4]{c1} }
i13: { U2: mul RF2.r2, RF2.r3, RF2.r2 | DB: mov RF3.r0, RF1.r1 }
i14: { U3: add RF3.r2, RF3.r2, RF3.r0 | U2: mul RF2.r0, RF2.r3, RF2.r0 | DB: mov RF3.r0, RF2.r2 }
i15: { U3: add RF3.r0, RF3.r1, RF3.r0 | U2: sub RF2.r0, RF2.r1, RF2.r0 }
; output t0 in RF3.r2
; output t1 in RF3.r0
; output t2 in RF1.r0
; output t3 in RF2.r0
