; block ex2 on FzBuf_0007e8 — 12 instructions
i0: { MP: mov B0.r0, DM[2]{c0} }
i1: { MP: mov B0.r0, DM[1]{x0} | L0: mov B1.r0, B0.r0 }
i2: { L0: mov B1.r0, B0.r0 | L1: mov B2.r0, B1.r0 | MP: mov B0.r0, DM[3]{x1} }
i3: { L1: mov B2.r1, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[4]{c1} }
i4: { U2: mul B2.r0, B2.r1, B2.r0 | L1: mov B2.r1, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[5]{x2} }
i5: { L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 | L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[6]{c2} }
i6: { U2: mul B2.r0, B2.r1, B2.r0 | MP: mov B0.r1, DM[0]{acc} | L3: mov B0.r0, B3.r0 | L1: mov B2.r1, B1.r0 | L0: mov B1.r0, B0.r0 }
i7: { U0: add B0.r1, B0.r1, B0.r0 | L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 }
i8: { U2: mul B2.r0, B2.r1, B2.r0 | L3: mov B0.r0, B3.r0 }
i9: { U0: add B0.r1, B0.r1, B0.r0 | L2: mov B3.r0, B2.r0 }
i10: { L3: mov B0.r0, B3.r0 }
i11: { U0: add B0.r0, B0.r1, B0.r0 }
; output y in B0.r0
