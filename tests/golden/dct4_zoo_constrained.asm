; block dct4 on FzCstr_0007e8 — 13 instructions
i0: { B0: mov RF0.r1, DM[0]{s0} }
i1: { B0: mov RF0.r0, DM[3]{s3} }
i2: { U0: add RF0.r1, RF0.r1, RF0.r0 | U2: sub RF0.r3, RF0.r1, RF0.r0 | B0: mov RF0.r2, DM[5]{c2} }
i3: { U2: mul RF0.r0, RF0.r3, RF0.r2 | B0: mov RF1.r1, DM[4]{c1} }
i4: { B0: mov RF1.r0, RF0.r0 }
i5: { B0: mov RF0.r0, DM[4]{c1} }
i6: { U2: mul RF0.r0, RF0.r3, RF0.r0 | B0: mov RF0.r3, DM[1]{s1} }
i7: { B0: mov DM[255]{spill0}, RF0.r0 }
i8: { B0: mov RF0.r0, DM[2]{s2} }
i9: { U0: add RF0.r0, RF0.r3, RF0.r0 | U2: sub RF0.r3, RF0.r3, RF0.r0 }
i10: { U0: add RF0.r2, RF0.r1, RF0.r0 | U2: mul RF0.r3, RF0.r3, RF0.r2 | B0: mov RF1.r2, RF0.r3 }
i11: { U2: sub RF0.r1, RF0.r1, RF0.r0 | U1: msu RF1.r0, RF1.r2, RF1.r1, RF1.r0 | B0: mov RF0.r0, DM[255]{spill0} }
i12: { U0: add RF0.r0, RF0.r0, RF0.r3 }
; output t0 in RF0.r2
; output t1 in RF0.r0
; output t2 in RF0.r1
; output t3 in RF1.r0
