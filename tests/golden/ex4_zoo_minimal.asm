; block ex4 on FzMin_0007e8 — 16 instructions
i0: { B0: mov RF0.r0, DM[3]{a1} }
i1: { B0: mov RF0.r1, DM[0]{k} }
i2: { U1: mul RF0.r2, RF0.r0, RF0.r1 | B0: mov RF0.r3, DM[1]{a0} }
i3: { U1: mul RF0.r2, RF0.r3, RF0.r1 | B0: mov DM[60]{spill0}, RF0.r2 }
i4: { B0: mov DM[61]{spill1}, RF0.r2 }
i5: { B0: mov RF0.r2, DM[4]{b1} }
i6: { U0: sub RF0.r3, RF0.r0, RF0.r2 | B0: mov DM[62]{spill2}, RF0.r3 }
i7: { B0: mov RF0.r0, DM[60]{spill0} }
i8: { U0: add RF0.r0, RF0.r0, RF0.r2 | B0: mov RF0.r2, DM[62]{spill2} }
i9: { U1: mul RF0.r3, RF0.r0, RF0.r3 | B0: mov RF0.r0, DM[61]{spill1} }
i10: { U0: add RF0.r1, RF0.r3, RF0.r1 | B0: mov DM[63]{spill3}, RF0.r1 }
i11: { B0: mov RF0.r3, DM[2]{b0} }
i12: { U0: sub RF0.r2, RF0.r2, RF0.r3 }
i13: { U0: add RF0.r3, RF0.r0, RF0.r3 | B0: mov RF0.r0, DM[63]{spill3} }
i14: { U1: mul RF0.r2, RF0.r3, RF0.r2 }
i15: { U0: add RF0.r0, RF0.r2, RF0.r0 }
; output y0 in RF0.r0
; output y1 in RF0.r1
