; block biquad on FzTiny_0007e8 — 25 instructions
i0: { B0: mov RF2.r1, DM[5]{b0} }
i1: { B0: mov RF2.r0, DM[0]{x} }
i2: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov RF2.r2, DM[6]{b1} }
i3: { B0: mov RF2.r1, DM[1]{x1} }
i4: { U2: mul RF2.r2, RF2.r2, RF2.r1 | B0: mov RF2.r1, DM[7]{b2} }
i5: { B0: mov DM[79]{spill0}, RF2.r0 }
i6: { B0: mov RF2.r0, DM[2]{x2} }
i7: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov DM[80]{spill1}, RF2.r2 }
i8: { B0: mov RF0.r1, DM[79]{scratch0} }
i9: { B0: mov RF0.r0, DM[80]{scratch1} }
i10: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov DM[81]{spill2}, RF2.r0 }
i11: { B0: mov RF0.r0, DM[81]{scratch2} }
i12: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov RF2.r1, DM[8]{a1} }
i13: { B0: mov RF2.r0, DM[3]{y1} }
i14: { U2: mul RF2.r2, RF2.r1, RF2.r0 | B0: mov RF2.r1, DM[9]{a2} }
i15: { B0: mov RF2.r0, DM[4]{y2} }
i16: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov DM[83]{spill4}, RF2.r2 }
i17: { B0: mov RF1.r0, DM[83]{scratch4} }
i18: { B0: mov DM[82]{spill3}, RF0.r0 }
i19: { B0: mov DM[84]{spill5}, RF2.r0 }
i20: { B0: mov RF1.r1, DM[82]{scratch3} }
i21: { U1: sub RF1.r1, RF1.r1, RF1.r0 | B0: mov RF1.r0, DM[84]{scratch5} }
i22: { U1: sub RF1.r0, RF1.r1, RF1.r0 | B0: mov RF0.r2, DM[0]{x} }
i23: { B0: mov RF0.r1, DM[1]{x1} }
i24: { B0: mov RF0.r0, DM[3]{y1} }
; output x1n in RF0.r2
; output x2n in RF0.r1
; output y in RF1.r0
; output y1n in RF1.r0
; output y2n in RF0.r0
