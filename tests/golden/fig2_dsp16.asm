; block fig2 on Dsp16 — 5 instructions
i0: { YB: mov RM.r1, DM[0]{a} }
i1: { YB: mov RM.r0, DM[1]{b} }
i2: { MACU: add RM.r2, RM.r1, RM.r0 | YB: mov RM.r1, DM[2]{c} }
i3: { YB: mov RM.r0, DM[3]{d} }
i4: { MACU: msu RM.r0, RM.r1, RM.r0, RM.r2 }
; output y in RM.r0
