; block ex5 on Arch1 — 13 instructions
i0: { DB: mov RF3.r1, DM[0]{ar} }
i1: { DB: mov RF3.r0, DM[3]{bi} }
i2: { U3: mul RF3.r2, RF3.r1, RF3.r0 | DB: mov RF3.r1, DM[1]{ai} }
i3: { DB: mov RF3.r0, DM[2]{br} }
i4: { U3: mul RF3.r0, RF3.r1, RF3.r0 | DB: mov RF2.r1, DM[0]{ar} }
i5: { U3: add RF3.r1, RF3.r2, RF3.r0 | DB: mov RF2.r0, DM[2]{br} }
i6: { U2: mul RF2.r2, RF2.r1, RF2.r0 | DB: mov RF2.r1, DM[1]{ai} }
i7: { DB: mov RF2.r0, DM[3]{bi} }
i8: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DB: mov RF3.r0, DM[5]{ci} }
i9: { U2: sub RF2.r0, RF2.r2, RF2.r0 | U3: add RF3.r0, RF3.r1, RF3.r0 | DB: mov RF2.r2, DM[4]{cr} }
i10: { U2: add RF2.r1, RF2.r0, RF2.r2 | DB: mov RF2.r0, RF3.r0 }
i11: { U2: add RF2.r0, RF2.r1, RF2.r0 }
i12: { U2: mul RF2.r0, RF2.r0, RF2.r2 }
; output e in RF2.r0
; output yi in RF3.r0
; output yr in RF2.r1
