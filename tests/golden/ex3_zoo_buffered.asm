; block ex3 on FzBuf_0007e8 — 13 instructions
i0: { MP: mov B0.r0, DM[0]{k} }
i1: { MP: mov B0.r1, DM[1]{a0} | L0: mov B1.r0, B0.r0 }
i2: { MP: mov B0.r0, DM[2]{b0} | L1: mov B2.r1, B1.r0 }
i3: { U0: add B0.r0, B0.r1, B0.r0 | MP: mov B0.r1, DM[3]{a1} }
i4: { L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[4]{b1} }
i5: { U0: add B0.r1, B0.r1, B0.r0 | L1: mov B2.r0, B1.r0 | MP: mov B0.r0, DM[4]{b1} }
i6: { U2: mul B2.r0, B2.r0, B2.r1 | MP: mov B0.r1, DM[2]{b0} | L0: mov B1.r0, B0.r1 }
i7: { L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 | L0: mov B1.r0, B0.r0 }
i8: { U2: mul B2.r0, B2.r0, B2.r1 | L3: mov B0.r0, B3.r0 | L0: mov B1.r1, B0.r1 }
i9: { L0: mov B1.r2, B0.r0 | L2: mov B3.r0, B2.r0 }
i10: { U1: sub B1.r2, B1.r2, B1.r1 | L3: mov B0.r0, B3.r0 }
i11: { L0: mov B1.r1, B0.r0 }
i12: { U1: sub B1.r0, B1.r1, B1.r0 }
; output y0 in B1.r2
; output y1 in B1.r0
