; block dct4 on FzBuf_0007e8 — 24 instructions
i0: { MP: mov B0.r0, DM[3]{s3} }
i1: { MP: mov B0.r0, DM[0]{s0} | L0: mov B1.r0, B0.r0 }
i2: { L0: mov B1.r1, B0.r0 | MP: mov B0.r0, DM[1]{s1} }
i3: { U1: sub B1.r0, B1.r1, B1.r0 | L0: mov B1.r1, B0.r0 | MP: mov B0.r0, DM[2]{s2} }
i4: { L0: mov B1.r0, B0.r0 | L1: mov B2.r0, B1.r0 | MP: mov B0.r0, DM[5]{c2} }
i5: { U1: sub B1.r2, B1.r1, B1.r0 | MP: mov B0.r0, DM[4]{c1} | L0: mov B1.r0, B0.r0 | L2: mov B3.r0, B2.r0 }
i6: { MP: mov B0.r1, DM[0]{s0} | L0: mov B1.r0, B0.r0 | L1: mov B2.r1, B1.r0 }
i7: { MP: mov B0.r0, DM[3]{s3} | L1: mov B2.r2, B1.r0 }
i8: { U0: add B0.r1, B0.r1, B0.r0 | MP: mov B0.r2, DM[1]{s1} }
i9: { MP: mov B0.r0, DM[2]{s2} | L0: mov B1.r1, B0.r1 }
i10: { U0: add B0.r2, B0.r2, B0.r0 | L3: mov B0.r0, B3.r0 }
i11: { U0: add B0.r1, B0.r1, B0.r2 | L0: mov B1.r0, B0.r2 | MP: mov DM[127]{spill0}, B0.r0 }
i12: { U1: sub B1.r1, B1.r1, B1.r0 | MP: mov B0.r0, DM[127]{spill0} }
i13: { L0: mov B1.r0, B0.r0 }
i14: { L0: mov B1.r0, B0.r0 | L1: mov B2.r0, B1.r0 }
i15: { U2: mul B2.r0, B2.r0, B2.r1 }
i16: { L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 }
i17: { U2: mul B2.r0, B2.r0, B2.r2 | L3: mov B0.r0, B3.r0 }
i18: { L1: mov B2.r0, B1.r2 | L2: mov B3.r0, B2.r0 | L0: mov B1.r2, B0.r0 }
i19: { U2: mul B2.r2, B2.r0, B2.r2 | L3: mov B0.r2, B3.r0 }
i20: { U2: mul B2.r0, B2.r0, B2.r1 | L2: mov B3.r0, B2.r2 }
i21: { L2: mov B3.r0, B2.r0 | L3: mov B0.r0, B3.r0 }
i22: { L3: mov B0.r0, B3.r0 | L0: mov B1.r0, B0.r0 }
i23: { U0: add B0.r0, B0.r2, B0.r0 | U1: sub B1.r0, B1.r2, B1.r0 }
; output t0 in B0.r1
; output t1 in B0.r0
; output t2 in B1.r1
; output t3 in B1.r0
