; block dct4 on FzMin_0007e8 — 21 instructions
i0: { B0: mov RF0.r1, DM[1]{s1} }
i1: { B0: mov RF0.r0, DM[2]{s2} }
i2: { U0: sub RF0.r3, RF0.r1, RF0.r0 | B0: mov RF0.r2, DM[5]{c2} }
i3: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r0, DM[0]{s0} }
i4: { B0: mov DM[60]{spill0}, RF0.r0 }
i5: { B0: mov RF0.r0, DM[60]{spill0} }
i6: { U1: mul RF0.r1, RF0.r3, RF0.r2 | B0: mov DM[61]{spill1}, RF0.r1 }
i7: { B0: mov DM[62]{spill2}, RF0.r3 }
i8: { B0: mov RF0.r3, DM[3]{s3} }
i9: { U0: sub RF0.r0, RF0.r0, RF0.r3 | B0: mov DM[63]{spill3}, RF0.r3 }
i10: { U1: mul RF0.r3, RF0.r0, RF0.r2 | B0: mov RF0.r2, DM[4]{c1} }
i11: { U1: mul RF0.r0, RF0.r0, RF0.r2 }
i12: { U0: add RF0.r0, RF0.r0, RF0.r1 | B0: mov RF0.r1, DM[62]{spill2} }
i13: { U1: mul RF0.r1, RF0.r1, RF0.r2 | B0: mov RF0.r2, DM[60]{spill0} }
i14: { U0: sub RF0.r3, RF0.r3, RF0.r1 | B0: mov RF0.r1, DM[61]{spill1} }
i15: { B0: mov DM[6]{t1}, RF0.r0 }
i16: { B0: mov RF0.r0, DM[63]{spill3} }
i17: { U0: add RF0.r2, RF0.r2, RF0.r0 | B0: mov DM[7]{t3}, RF0.r3 }
i18: { U0: add RF0.r0, RF0.r2, RF0.r1 }
i19: { U0: sub RF0.r0, RF0.r2, RF0.r1 | B0: mov DM[8]{t0}, RF0.r0 }
i20: { B0: mov DM[9]{t2}, RF0.r0 }
; output t0 in DM[8]
; output t1 in DM[6]
; output t2 in DM[9]
; output t3 in DM[7]
