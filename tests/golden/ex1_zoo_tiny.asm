; block ex1 on FzTiny_0007e8 — 12 instructions
i0: { B0: mov RF0.r1, DM[0]{a} }
i1: { B0: mov RF0.r0, DM[1]{b} }
i2: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov RF2.r0, DM[2]{c} }
i3: { B0: mov DM[82]{spill0}, RF0.r0 }
i4: { B0: mov RF2.r1, DM[82]{scratch0} }
i5: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov RF0.r1, DM[3]{d} }
i6: { B0: mov DM[83]{spill1}, RF2.r0 }
i7: { B0: mov RF0.r0, DM[83]{scratch1} }
i8: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov RF1.r0, DM[1]{b} }
i9: { B0: mov DM[84]{spill2}, RF0.r0 }
i10: { B0: mov RF1.r1, DM[84]{scratch2} }
i11: { U1: sub RF1.r0, RF1.r1, RF1.r0 }
; output y in RF1.r0
