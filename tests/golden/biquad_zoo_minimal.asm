; block biquad on FzMin_0007e8 — 16 instructions
i0: { B0: mov RF0.r0, DM[5]{b0} }
i1: { B0: mov RF0.r3, DM[0]{x} }
i2: { U1: mul RF0.r1, RF0.r0, RF0.r3 | B0: mov RF0.r0, DM[6]{b1} }
i3: { B0: mov RF0.r2, DM[1]{x1} }
i4: { U1: mul RF0.r0, RF0.r0, RF0.r2 | B0: mov DM[10]{x1n}, RF0.r3 }
i5: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r3, DM[7]{b2} }
i6: { B0: mov RF0.r0, DM[2]{x2} }
i7: { U1: mul RF0.r3, RF0.r3, RF0.r0 | B0: mov RF0.r0, DM[8]{a1} }
i8: { U0: add RF0.r1, RF0.r1, RF0.r3 | B0: mov RF0.r3, DM[3]{y1} }
i9: { U1: mul RF0.r0, RF0.r0, RF0.r3 | B0: mov DM[11]{x2n}, RF0.r2 }
i10: { U0: sub RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[9]{a2} }
i11: { B0: mov RF0.r0, DM[4]{y2} }
i12: { U1: mul RF0.r0, RF0.r1, RF0.r0 | B0: mov DM[12]{y2n}, RF0.r3 }
i13: { U0: sub RF0.r0, RF0.r2, RF0.r0 }
i14: { B0: mov DM[13]{y}, RF0.r0 }
i15: { B0: mov DM[14]{y1n}, RF0.r0 }
; output x1n in DM[0]
; output x2n in DM[1]
; output y in DM[13]
; output y1n in DM[14]
; output y2n in DM[3]
