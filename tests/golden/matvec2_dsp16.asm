; block matvec2 on Dsp16 — 12 instructions
i0: { YB: mov RM.r0, DM[1]{m01} | XB: mov RA.r2, DM[7]{hi} }
i1: { YB: mov RM.r1, DM[5]{v1} | XB: mov RA.r1, DM[6]{lo} }
i2: { MACU: mul RM.r3, RM.r0, RM.r1 | YB: mov RM.r0, DM[3]{m11} }
i3: { MACU: mul RM.r1, RM.r0, RM.r1 | YB: mov RM.r0, DM[0]{m00} }
i4: { YB: mov RM.r2, DM[4]{v0} }
i5: { MACU: mac RM.r3, RM.r0, RM.r2, RM.r3 | YB: mov RM.r0, DM[2]{m10} }
i6: { MACU: mac RM.r0, RM.r0, RM.r2, RM.r1 | YB: mov DM[510]{spill0}, RM.r3 }
i7: { XB: mov RA.r0, DM[510]{scratch0} | YB: mov DM[511]{spill1}, RM.r0 }
i8: { ALU0: min RA.r3, RA.r0, RA.r2 | XB: mov RA.r0, DM[511]{scratch1} }
i9: { ALU0: min RA.r0, RA.r0, RA.r2 }
i10: { ALU0: max RA.r2, RA.r3, RA.r1 }
i11: { ALU0: max RA.r0, RA.r0, RA.r1 }
; output r0 in RA.r2
; output r1 in RA.r0
