; block dct4 on FzAsym_0007e8 — 28 instructions
i0: { BX: mov RF0.r0, DM[3]{s3} }
i1: { BX: mov RF1.r0, RF0.r0 }
i2: { BX: mov RF0.r0, DM[0]{s0} | BY: mov RF2.r1, RF1.r0 }
i3: { BX: mov RF1.r0, RF0.r0 }
i4: { BY: mov RF2.r0, RF1.r0 | BX: mov RF0.r0, DM[1]{s1} }
i5: { BX: mov RF1.r0, RF0.r0 }
i6: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i7: { BX: mov RF3.r0, RF2.r1 }
i8: { U3: sub RF3.r0, RF3.r1, RF3.r0 | BX: mov RF3.r1, RF2.r0 }
i9: { BX: mov RF0.r0, DM[2]{s2} | BY: mov RF5.r0, RF3.r0 }
i10: { BX: mov RF1.r0, RF0.r0 | BY: mov RF0.r1, RF5.r0 }
i11: { BX: mov RF0.r2, DM[0]{s0} | BY: mov RF2.r0, RF1.r0 }
i12: { BX: mov RF3.r0, RF2.r0 }
i13: { U3: sub RF3.r3, RF3.r1, RF3.r0 | BX: mov RF0.r0, DM[3]{s3} }
i14: { U0: add RF0.r2, RF0.r2, RF0.r0 | BY: mov RF5.r0, RF3.r3 | BX: mov RF0.r3, DM[5]{c2} }
i15: { U6: mul RF0.r0, RF0.r1, RF0.r3 | BX: mov RF1.r0, RF0.r2 }
i16: { BY: mov RF2.r1, RF1.r0 | BY: mov RF0.r0, RF5.r0 | BX: mov RF1.r0, RF0.r0 }
i17: { U6: mul RF0.r3, RF0.r0, RF0.r3 | BX: mov RF0.r0, DM[4]{c1} | BY: mov RF2.r0, RF1.r0 }
i18: { U0: mac RF0.r1, RF0.r1, RF0.r0, RF0.r3 | BX: mov RF3.r0, RF2.r0 }
i19: { BX: mov RF0.r3, DM[1]{s1} }
i20: { BX: mov RF0.r0, DM[2]{s2} }
i21: { U0: add RF0.r0, RF0.r3, RF0.r0 | BX: mov RF3.r2, RF2.r1 }
i22: { U0: add RF0.r2, RF0.r2, RF0.r0 | BX: mov RF1.r0, RF0.r0 }
i23: { BY: mov RF2.r0, RF1.r0 | BX: mov RF0.r0, DM[4]{c1} }
i24: { BX: mov RF1.r0, RF0.r0 }
i25: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i26: { U3: sub RF3.r2, RF3.r2, RF3.r1 | BX: mov RF3.r1, RF2.r0 }
i27: { U3: msu RF3.r0, RF3.r3, RF3.r1, RF3.r0 }
; output t0 in RF0.r2
; output t1 in RF0.r1
; output t2 in RF3.r2
; output t3 in RF3.r0
