; block ex3 on FzMin_0007e8 — 8 instructions
i0: { B0: mov RF0.r0, DM[1]{a0} }
i1: { B0: mov RF0.r2, DM[2]{b0} }
i2: { U0: add RF0.r0, RF0.r0, RF0.r2 | B0: mov RF0.r3, DM[0]{k} }
i3: { U1: mul RF0.r1, RF0.r0, RF0.r3 | B0: mov RF0.r0, DM[3]{a1} }
i4: { U0: sub RF0.r2, RF0.r1, RF0.r2 | B0: mov RF0.r1, DM[4]{b1} }
i5: { U0: add RF0.r0, RF0.r0, RF0.r1 }
i6: { U1: mul RF0.r0, RF0.r0, RF0.r3 }
i7: { U0: sub RF0.r0, RF0.r0, RF0.r1 }
; output y0 in RF0.r2
; output y1 in RF0.r0
