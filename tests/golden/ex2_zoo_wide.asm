; block ex2 on FzWide_0007e8 — 7 instructions
i0: { B0: mov RF1.r6, DM[1]{x0} | B0: mov RF1.r5, DM[2]{c0} }
i1: { B0: mov RF1.r3, DM[3]{x1} | B0: mov RF1.r2, DM[4]{c1} }
i2: { B0: mov RF1.r1, DM[5]{x2} | B0: mov RF1.r0, DM[6]{c2} }
i3: { B0: mov RF1.r4, DM[0]{acc} }
i4: { U1: mac RF1.r4, RF1.r6, RF1.r5, RF1.r4 }
i5: { U1: mac RF1.r2, RF1.r3, RF1.r2, RF1.r4 }
i6: { U1: mac RF1.r0, RF1.r1, RF1.r0, RF1.r2 }
; output y in RF1.r0
