; block ex4 on Arch4 — 11 instructions
i0: { DB: mov RF3.r0, DM[3]{a1} }
i1: { DB: mov RF3.r1, DM[0]{k} }
i2: { U3: mul RF3.r2, RF3.r0, RF3.r1 | DB: mov RF3.r0, DM[4]{b1} }
i3: { U3: add RF3.r2, RF3.r2, RF3.r0 | DB: mov RF1.r1, DM[3]{a1} }
i4: { DB: mov RF1.r0, DM[4]{b1} }
i5: { U1: sub RF1.r0, RF1.r1, RF1.r0 | DB: mov RF2.r1, DM[0]{k} }
i6: { DB: mov RF2.r3, DM[1]{a0} }
i7: { DB: mov RF2.r0, DM[2]{b0} }
i8: { U2: mac RF2.r2, RF2.r3, RF2.r1, RF2.r0 | DB: mov RF3.r0, RF1.r0 }
i9: { U2: sub RF2.r0, RF2.r3, RF2.r0 | U3: mul RF3.r0, RF3.r2, RF3.r0 }
i10: { U2: mac RF2.r0, RF2.r2, RF2.r0, RF2.r1 | U3: add RF3.r0, RF3.r0, RF3.r1 }
; output y0 in RF2.r0
; output y1 in RF3.r0
