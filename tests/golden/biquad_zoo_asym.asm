; block biquad on FzAsym_0007e8 — 28 instructions
i0: { BX: mov RF0.r0, DM[6]{b1} }
i1: { BX: mov RF0.r1, DM[1]{x1} }
i2: { U6: mul RF0.r3, RF0.r0, RF0.r1 | BX: mov RF0.r2, DM[5]{b0} }
i3: { BX: mov RF0.r0, DM[0]{x} }
i4: { U0: mac RF0.r3, RF0.r2, RF0.r0, RF0.r3 | BX: mov RF0.r2, DM[7]{b2} }
i5: { BX: mov RF1.r0, RF0.r1 }
i6: { BX: mov RF1.r0, RF0.r0 | BY: mov RF2.r0, RF1.r0 }
i7: { BX: mov RF0.r0, DM[3]{y1} | BY: mov RF2.r0, RF1.r0 | BY: mov DM[10]{x2n}, RF2.r0 }
i8: { BY: mov DM[11]{x1n}, RF2.r0 | BX: mov RF1.r0, RF0.r0 }
i9: { BX: mov RF0.r1, DM[8]{a1} | BY: mov RF2.r0, RF1.r0 }
i10: { U6: mul RF0.r0, RF0.r1, RF0.r0 | BX: mov RF0.r1, DM[2]{x2} | BY: mov DM[12]{y2n}, RF2.r0 }
i11: { U0: mac RF0.r0, RF0.r2, RF0.r1, RF0.r3 | BX: mov RF1.r0, RF0.r0 }
i12: { BX: mov RF1.r0, RF0.r0 | BY: mov RF2.r0, RF1.r0 }
i13: { BY: mov RF2.r1, RF1.r0 | BX: mov RF3.r0, RF2.r0 }
i14: { BX: mov RF0.r0, DM[9]{a2} }
i15: { BX: mov RF1.r0, RF0.r0 }
i16: { BY: mov RF2.r0, RF1.r0 | BX: mov RF0.r0, DM[4]{y2} }
i17: { BX: mov RF1.r0, RF0.r0 }
i18: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i19: { BX: mov RF3.r2, RF2.r1 }
i20: { U3: sub RF3.r2, RF3.r2, RF3.r0 | BX: mov RF3.r0, RF2.r0 }
i21: { U3: msu RF3.r0, RF3.r1, RF3.r0, RF3.r2 }
i22: { BY: mov RF5.r1, RF3.r0 | BY: mov RF5.r0, RF3.r0 }
i23: { BY: mov RF0.r1, RF5.r1 | BY: mov RF0.r0, RF5.r0 }
i24: { BX: mov RF1.r0, RF0.r1 }
i25: { BY: mov RF2.r0, RF1.r0 | BX: mov RF1.r0, RF0.r0 }
i26: { BY: mov DM[13]{y}, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i27: { BY: mov DM[14]{y1n}, RF2.r0 }
; output x1n in DM[0]
; output x2n in DM[1]
; output y in DM[13]
; output y1n in DM[14]
; output y2n in DM[3]
