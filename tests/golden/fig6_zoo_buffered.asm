ERROR: no functional unit of machine 'FzBuf_0007e8' implements COMPL (required by n7:COMPL(n6) in block 'fig6')
