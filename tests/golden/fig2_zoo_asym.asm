; block fig2 on FzAsym_0007e8 — 9 instructions
i0: { BX: mov RF0.r1, DM[0]{a} }
i1: { BX: mov RF0.r0, DM[1]{b} }
i2: { U0: add RF0.r2, RF0.r1, RF0.r0 | BX: mov RF0.r1, DM[2]{c} }
i3: { BX: mov RF0.r0, DM[3]{d} }
i4: { U6: mul RF0.r0, RF0.r1, RF0.r0 | BX: mov RF1.r0, RF0.r2 }
i5: { BY: mov RF2.r0, RF1.r0 | BX: mov RF1.r0, RF0.r0 }
i6: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i7: { BX: mov RF3.r0, RF2.r0 }
i8: { U3: sub RF3.r0, RF3.r1, RF3.r0 }
; output y in RF3.r0
