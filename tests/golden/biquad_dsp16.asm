; block biquad on Dsp16 — 12 instructions
i0: { YB: mov RM.r3, DM[8]{a1} | XB: mov RA.r2, DM[0]{x} }
i1: { YB: mov RM.r2, DM[3]{y1} | XB: mov RA.r1, DM[1]{x1} }
i2: { YB: mov RM.r1, DM[9]{a2} | XB: mov RA.r0, DM[3]{y1} }
i3: { YB: mov RM.r4, DM[6]{b1} }
i4: { YB: mov RM.r0, DM[1]{x1} }
i5: { MACU: mul RM.r5, RM.r4, RM.r0 | YB: mov RM.r4, DM[5]{b0} }
i6: { YB: mov RM.r0, DM[0]{x} }
i7: { MACU: mac RM.r5, RM.r4, RM.r0, RM.r5 | YB: mov RM.r4, DM[7]{b2} }
i8: { YB: mov RM.r0, DM[2]{x2} }
i9: { MACU: mac RM.r4, RM.r4, RM.r0, RM.r5 | YB: mov RM.r0, DM[4]{y2} }
i10: { MACU: msu RM.r2, RM.r3, RM.r2, RM.r4 }
i11: { MACU: msu RM.r0, RM.r1, RM.r0, RM.r2 }
; output x1n in RA.r2
; output x2n in RA.r1
; output y in RM.r0
; output y1n in RM.r0
; output y2n in RA.r0
