; block biquad on FzWide_0007e8 — 10 instructions
i0: { B0: mov RF1.r1, DM[6]{b1} | B0: mov RF1.r0, DM[1]{x1} }
i1: { U5: mul RF1.r2, RF1.r1, RF1.r0 | B0: mov RF1.r1, DM[5]{b0} | B0: mov RF1.r0, DM[0]{x} }
i2: { U1: mac RF1.r3, RF1.r1, RF1.r0, RF1.r2 | B0: mov RF1.r1, DM[7]{b2} | B0: mov RF1.r0, DM[2]{x2} }
i3: { U5: mul RF1.r2, RF1.r1, RF1.r0 | B0: mov RF1.r1, DM[9]{a2} | B0: mov RF1.r0, DM[4]{y2} }
i4: { U3: add RF1.r3, RF1.r3, RF1.r2 | U5: mul RF1.r0, RF1.r1, RF1.r0 | B0: mov RF1.r2, DM[8]{a1} | B0: mov RF1.r1, DM[3]{y1} }
i5: { U5: mul RF1.r0, RF1.r2, RF1.r1 | B1: mov RF0.r3, RF1.r0 | B0: mov RF0.r2, DM[0]{x} | B0: mov RF0.r1, DM[1]{x1} }
i6: { B1: mov RF0.r4, RF1.r0 | B0: mov RF0.r0, DM[3]{y1} }
i7: { B1: mov RF0.r5, RF1.r3 }
i8: { U2: sub RF0.r4, RF0.r5, RF0.r4 }
i9: { U2: sub RF0.r3, RF0.r4, RF0.r3 }
; output x1n in RF0.r2
; output x2n in RF0.r1
; output y in RF0.r3
; output y1n in RF0.r3
; output y2n in RF0.r0
