; block dct4 on FzTiny_0007e8 — 27 instructions
i0: { B0: mov RF1.r1, DM[0]{s0} }
i1: { B0: mov RF1.r0, DM[3]{s3} }
i2: { U1: sub RF1.r2, RF1.r1, RF1.r0 | B0: mov RF1.r1, DM[1]{s1} }
i3: { B0: mov RF1.r0, DM[2]{s2} }
i4: { U1: sub RF1.r0, RF1.r1, RF1.r0 | B0: mov DM[79]{spill2}, RF1.r2 }
i5: { B0: mov DM[80]{spill3}, RF1.r0 }
i6: { B0: mov RF0.r1, DM[0]{s0} }
i7: { B0: mov RF0.r0, DM[3]{s3} }
i8: { U0: add RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[1]{s1} }
i9: { B0: mov RF0.r0, DM[2]{s2} }
i10: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov RF2.r2, DM[79]{scratch2} }
i11: { U0: add RF0.r2, RF0.r2, RF0.r0 | B0: mov DM[77]{spill0}, RF0.r2 }
i12: { B0: mov RF2.r0, DM[4]{c1} }
i13: { U2: mul RF2.r1, RF2.r2, RF2.r0 | B0: mov DM[78]{spill1}, RF0.r0 }
i14: { B0: mov DM[81]{spill4}, RF2.r1 }
i15: { B0: mov RF2.r1, DM[80]{scratch3} }
i16: { U2: mul RF2.r0, RF2.r1, RF2.r0 | B0: mov RF1.r1, DM[77]{scratch0} }
i17: { B0: mov RF1.r0, DM[78]{scratch1} }
i18: { U1: sub RF1.r2, RF1.r1, RF1.r0 | B0: mov DM[84]{spill7}, RF2.r0 }
i19: { B0: mov RF2.r0, DM[5]{c2} }
i20: { U2: mul RF2.r1, RF2.r1, RF2.r0 | B0: mov RF0.r1, DM[81]{scratch4} }
i21: { U2: mul RF2.r0, RF2.r2, RF2.r0 | B0: mov DM[82]{spill5}, RF2.r1 }
i22: { B0: mov RF0.r0, DM[82]{scratch5} }
i23: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov DM[83]{spill6}, RF2.r0 }
i24: { B0: mov RF1.r1, DM[83]{scratch6} }
i25: { B0: mov RF1.r0, DM[84]{scratch7} }
i26: { U1: sub RF1.r0, RF1.r1, RF1.r0 }
; output t0 in RF0.r2
; output t1 in RF0.r0
; output t2 in RF1.r2
; output t3 in RF1.r0
