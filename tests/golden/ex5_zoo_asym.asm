; block ex5 on FzAsym_0007e8 — 18 instructions
i0: { BX: mov RF0.r1, DM[0]{ar} }
i1: { BX: mov RF0.r3, DM[2]{br} }
i2: { U6: mul RF0.r2, RF0.r1, RF0.r3 | BX: mov RF0.r0, DM[1]{ai} }
i3: { U6: mul RF0.r0, RF0.r0, RF0.r3 | BX: mov RF1.r0, RF0.r0 }
i4: { BY: mov RF2.r0, RF1.r0 | BX: mov RF1.r0, RF0.r2 }
i5: { BX: mov RF3.r2, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i6: { BX: mov RF0.r3, DM[4]{cr} }
i7: { BX: mov RF0.r2, DM[3]{bi} }
i8: { U0: mac RF0.r1, RF0.r1, RF0.r2, RF0.r0 | BX: mov RF0.r0, DM[5]{ci} }
i9: { U0: add RF0.r1, RF0.r1, RF0.r0 | BX: mov RF1.r0, RF0.r2 }
i10: { BY: mov RF2.r0, RF1.r0 | BX: mov RF3.r0, RF2.r0 }
i11: { BX: mov RF3.r1, RF2.r0 }
i12: { U3: msu RF3.r0, RF3.r2, RF3.r1, RF3.r0 }
i13: { BY: mov RF5.r0, RF3.r0 }
i14: { BY: mov RF0.r0, RF5.r0 }
i15: { U0: add RF0.r2, RF0.r0, RF0.r3 }
i16: { U0: add RF0.r0, RF0.r2, RF0.r1 }
i17: { U6: mul RF0.r0, RF0.r0, RF0.r3 }
; output e in RF0.r0
; output yi in RF0.r1
; output yr in RF0.r2
