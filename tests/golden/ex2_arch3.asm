; block ex2 on Arch3 — 7 instructions
i0: { DBB: mov RF3.r1, DM[1]{x0} | DBA: mov RF2.r1, DM[3]{x1} }
i1: { DBB: mov RF3.r0, DM[2]{c0} | DBA: mov RF2.r0, DM[4]{c1} }
i2: { U3: mul RF3.r1, RF3.r1, RF3.r0 | U2: mul RF2.r2, RF2.r1, RF2.r0 | DBB: mov RF3.r0, DM[0]{acc} | DBA: mov RF2.r1, DM[5]{x2} }
i3: { U3: add RF3.r0, RF3.r0, RF3.r1 | DBA: mov RF2.r0, DM[6]{c2} }
i4: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DBB: mov RF2.r1, RF3.r0 }
i5: { U2: add RF2.r1, RF2.r1, RF2.r2 }
i6: { U2: add RF2.r0, RF2.r1, RF2.r0 }
; output y in RF2.r0
