; block ex1 on Arch3 — 5 instructions
i0: { DBA: mov RF2.r0, DM[0]{a} | DBB: mov RF2.r2, DM[1]{b} }
i1: { U2: add RF2.r3, RF2.r0, RF2.r2 | DBA: mov RF2.r1, DM[2]{c} | DBB: mov RF2.r0, DM[3]{d} }
i2: { U2: mul RF2.r1, RF2.r3, RF2.r1 }
i3: { U2: add RF2.r0, RF2.r0, RF2.r1 }
i4: { U2: sub RF2.r0, RF2.r0, RF2.r2 }
; output y in RF2.r0
