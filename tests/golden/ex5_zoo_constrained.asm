; block ex5 on FzCstr_0007e8 — 12 instructions
i0: { B0: mov RF0.r3, DM[2]{br} }
i1: { B0: mov RF0.r1, DM[1]{ai} }
i2: { U2: mul RF0.r0, RF0.r1, RF0.r3 | B0: mov RF0.r2, DM[0]{ar} }
i3: { U2: mul RF0.r3, RF0.r2, RF0.r3 | B0: mov RF1.r1, RF0.r0 }
i4: { B0: mov RF0.r0, DM[3]{bi} }
i5: { U0: msu RF0.r1, RF0.r1, RF0.r0, RF0.r3 | U2: mul RF0.r0, RF0.r2, RF0.r0 | B0: mov RF1.r0, DM[5]{ci} }
i6: { B0: mov RF1.r2, RF0.r0 }
i7: { U1: add RF1.r1, RF1.r2, RF1.r1 | B0: mov RF0.r2, DM[4]{cr} }
i8: { U0: add RF0.r1, RF0.r1, RF0.r2 | U1: add RF1.r0, RF1.r1, RF1.r0 }
i9: { B0: mov RF0.r0, RF1.r0 }
i10: { U0: add RF0.r0, RF0.r1, RF0.r0 }
i11: { U2: mul RF0.r0, RF0.r0, RF0.r2 }
; output e in RF0.r0
; output yi in RF1.r0
; output yr in RF0.r1
