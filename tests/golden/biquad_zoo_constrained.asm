; block biquad on FzCstr_0007e8 — 13 instructions
i0: { B0: mov RF0.r0, DM[5]{b0} }
i1: { B0: mov RF0.r2, DM[0]{x} }
i2: { U2: mul RF0.r3, RF0.r0, RF0.r2 | B0: mov RF0.r0, DM[6]{b1} }
i3: { B0: mov RF0.r1, DM[1]{x1} }
i4: { U2: mul RF0.r0, RF0.r0, RF0.r1 | B0: mov RF1.r2, DM[8]{a1} }
i5: { U0: add RF0.r0, RF0.r3, RF0.r0 | B0: mov RF0.r3, DM[7]{b2} }
i6: { B0: mov RF1.r3, RF0.r0 }
i7: { B0: mov RF0.r0, DM[2]{x2} }
i8: { U2: mul RF0.r0, RF0.r3, RF0.r0 | B0: mov RF1.r0, DM[3]{y1} }
i9: { B0: mov RF1.r1, RF0.r0 }
i10: { U1: add RF1.r3, RF1.r3, RF1.r1 | B0: mov RF1.r1, DM[9]{a2} }
i11: { U1: msu RF1.r2, RF1.r2, RF1.r0, RF1.r3 | B0: mov RF1.r0, DM[4]{y2} }
i12: { U1: msu RF1.r0, RF1.r1, RF1.r0, RF1.r2 | B0: mov RF0.r0, DM[3]{y1} }
; output x1n in RF0.r2
; output x2n in RF0.r1
; output y in RF1.r0
; output y1n in RF1.r0
; output y2n in RF0.r0
