; block ex5 on FzMin_0007e8 — 12 instructions
i0: { B0: mov RF0.r1, DM[0]{ar} }
i1: { B0: mov RF0.r0, DM[2]{br} }
i2: { U1: mul RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r3, DM[1]{ai} }
i3: { U1: mul RF0.r0, RF0.r3, RF0.r0 | B0: mov DM[63]{spill0}, RF0.r2 }
i4: { B0: mov RF0.r2, DM[3]{bi} }
i5: { U1: mul RF0.r1, RF0.r1, RF0.r2 }
i6: { U1: mul RF0.r2, RF0.r3, RF0.r2 | U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r0, DM[5]{ci} }
i7: { U0: add RF0.r1, RF0.r1, RF0.r0 | B0: mov RF0.r0, DM[63]{spill0} }
i8: { U0: sub RF0.r0, RF0.r0, RF0.r2 | B0: mov RF0.r3, DM[4]{cr} }
i9: { U0: add RF0.r2, RF0.r0, RF0.r3 }
i10: { U0: add RF0.r0, RF0.r2, RF0.r1 }
i11: { U1: mul RF0.r0, RF0.r0, RF0.r3 }
; output e in RF0.r0
; output yi in RF0.r1
; output yr in RF0.r2
