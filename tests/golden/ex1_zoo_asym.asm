; block ex1 on FzAsym_0007e8 — 10 instructions
i0: { BX: mov RF0.r1, DM[0]{a} }
i1: { BX: mov RF0.r0, DM[1]{b} }
i2: { U0: add RF0.r2, RF0.r1, RF0.r0 | BX: mov RF0.r1, DM[2]{c} }
i3: { BX: mov RF0.r0, DM[3]{d} }
i4: { U0: mac RF0.r1, RF0.r2, RF0.r1, RF0.r0 | BX: mov RF0.r0, DM[1]{b} }
i5: { BX: mov RF1.r0, RF0.r0 }
i6: { BX: mov RF1.r0, RF0.r1 | BY: mov RF2.r0, RF1.r0 }
i7: { BY: mov RF2.r0, RF1.r0 | BX: mov RF3.r0, RF2.r0 }
i8: { BX: mov RF3.r1, RF2.r0 }
i9: { U3: sub RF3.r0, RF3.r1, RF3.r0 }
; output y in RF3.r0
