; block ex4 on FzAsym_0007e8 — 19 instructions
i0: { BX: mov RF0.r0, DM[3]{a1} }
i1: { BX: mov RF1.r0, RF0.r0 }
i2: { BX: mov RF0.r0, DM[2]{b0} | BY: mov RF2.r0, RF1.r0 }
i3: { BX: mov RF1.r0, RF0.r0 }
i4: { BX: mov RF0.r0, DM[1]{a0} | BY: mov RF2.r1, RF1.r0 }
i5: { BX: mov RF1.r0, RF0.r0 }
i6: { BY: mov RF2.r2, RF1.r0 | BX: mov RF0.r0, DM[4]{b1} }
i7: { BX: mov RF1.r0, RF0.r0 }
i8: { BX: mov RF3.r1, RF2.r0 | BY: mov RF2.r0, RF1.r0 }
i9: { BX: mov RF3.r0, RF2.r0 }
i10: { U3: sub RF3.r0, RF3.r1, RF3.r0 | BX: mov RF3.r1, RF2.r2 }
i11: { BX: mov RF3.r0, RF2.r1 | BY: mov RF5.r0, RF3.r0 }
i12: { U3: sub RF3.r0, RF3.r1, RF3.r0 | BX: mov RF0.r2, DM[0]{k} | BY: mov RF0.r0, RF5.r0 }
i13: { BY: mov RF5.r0, RF3.r0 | BX: mov RF0.r1, DM[3]{a1} }
i14: { U6: mul RF0.r3, RF0.r1, RF0.r2 | BX: mov RF0.r1, DM[4]{b1} }
i15: { U0: add RF0.r3, RF0.r3, RF0.r1 | BX: mov RF0.r1, DM[1]{a0} }
i16: { U0: mac RF0.r0, RF0.r3, RF0.r0, RF0.r2 | BX: mov RF0.r3, DM[2]{b0} }
i17: { U0: mac RF0.r3, RF0.r1, RF0.r2, RF0.r3 | BY: mov RF0.r1, RF5.r0 }
i18: { U0: mac RF0.r1, RF0.r3, RF0.r1, RF0.r2 }
; output y0 in RF0.r1
; output y1 in RF0.r0
