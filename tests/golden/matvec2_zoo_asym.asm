ERROR: no functional unit of machine 'FzAsym_0007e8' implements MIN (required by n14:MIN(n10,n7) in block 'matvec2')
