; block ex5 on FzBuf_0007e8 — 28 instructions
i0: { MP: mov B0.r0, DM[1]{ai} }
i1: { MP: mov B0.r0, DM[2]{br} | L0: mov B1.r0, B0.r0 }
i2: { MP: mov B0.r0, DM[0]{ar} | L0: mov B1.r0, B0.r0 | L1: mov B2.r1, B1.r0 }
i3: { L0: mov B1.r0, B0.r0 | L1: mov B2.r2, B1.r0 | MP: mov B0.r0, DM[3]{bi} }
i4: { L1: mov B2.r0, B1.r0 | L0: mov B1.r2, B0.r0 | MP: mov B0.r2, DM[4]{cr} }
i5: { MP: mov B0.r1, DM[5]{ci} | L2: mov B3.r0, B2.r0 }
i6: { MP: mov B0.r0, DM[4]{cr} }
i7: { L0: mov B1.r1, B0.r0 | L3: mov B0.r0, B3.r0 | MP: mov DM[127]{spill3}, B0.r2 }
i8: { MP: mov DM[124]{spill0}, B0.r0 }
i9: { MP: mov B0.r0, DM[124]{spill0} }
i10: { L0: mov B1.r0, B0.r0 }
i11: { L1: mov B2.r0, B1.r0 | L0: mov B1.r0, B0.r0 }
i12: { U2: mul B2.r0, B2.r0, B2.r2 }
i13: { U2: mul B2.r2, B2.r1, B2.r2 | L2: mov B3.r0, B2.r0 | L1: mov B2.r0, B1.r0 }
i14: { L1: mov B2.r2, B1.r2 | L3: mov B0.r0, B3.r0 | L2: mov B3.r0, B2.r2 }
i15: { U2: mul B2.r1, B2.r1, B2.r2 | L0: mov B1.r2, B0.r0 | L3: mov B0.r0, B3.r0 }
i16: { U2: mul B2.r1, B2.r0, B2.r2 | L2: mov B3.r0, B2.r1 | L1: mov B2.r0, B1.r1 | MP: mov DM[126]{spill2}, B0.r0 }
i17: { L3: mov B0.r2, B3.r0 | L2: mov B3.r0, B2.r1 | MP: mov B0.r0, DM[126]{spill2} }
i18: { L0: mov B1.r0, B0.r2 | L3: mov B0.r2, B3.r0 }
i19: { U1: sub B1.r0, B1.r2, B1.r0 | MP: mov DM[125]{spill1}, B0.r2 }
i20: { L1: mov B2.r1, B1.r0 | MP: mov B0.r2, DM[125]{spill1} }
i21: { U0: add B0.r2, B0.r2, B0.r0 | L2: mov B3.r0, B2.r1 | MP: mov B0.r0, DM[127]{spill3} }
i22: { U0: add B0.r1, B0.r2, B0.r1 | L3: mov B0.r2, B3.r0 }
i23: { U0: add B0.r2, B0.r2, B0.r0 }
i24: { U0: add B0.r0, B0.r2, B0.r1 }
i25: { L0: mov B1.r0, B0.r0 }
i26: { L1: mov B2.r1, B1.r0 }
i27: { U2: mul B2.r0, B2.r1, B2.r0 }
; output e in B2.r0
; output yi in B0.r1
; output yr in B0.r2
