ERROR: no functional unit of machine 'Arch3' implements MIN (required by n14:MIN(n10,n7) in block 'matvec2')
