; block ex4 on FzBuf_0007e8 — 19 instructions
i0: { MP: mov B0.r0, DM[3]{a1} }
i1: { MP: mov B0.r1, DM[0]{k} | L0: mov B1.r1, B0.r0 }
i2: { MP: mov B0.r0, DM[1]{a0} | L0: mov B1.r0, B0.r1 | L1: mov B2.r0, B1.r1 }
i3: { L0: mov B1.r2, B0.r0 | L1: mov B2.r1, B1.r0 | MP: mov B0.r0, DM[4]{b1} }
i4: { U2: mul B2.r0, B2.r0, B2.r1 | L1: mov B2.r2, B1.r2 }
i5: { U2: mul B2.r0, B2.r2, B2.r1 | L2: mov B3.r0, B2.r0 }
i6: { L2: mov B3.r0, B2.r0 | L3: mov B0.r2, B3.r0 }
i7: { U0: add B0.r0, B0.r2, B0.r0 | L3: mov B0.r2, B3.r0 }
i8: { MP: mov B0.r0, DM[2]{b0} | L0: mov B1.r0, B0.r0 }
i9: { U0: add B0.r2, B0.r2, B0.r0 | MP: mov B0.r0, DM[2]{b0} | L1: mov B2.r1, B1.r0 }
i10: { L0: mov B1.r0, B0.r0 | MP: mov B0.r0, DM[4]{b1} }
i11: { U1: sub B1.r2, B1.r2, B1.r0 | L0: mov B1.r0, B0.r0 }
i12: { U1: sub B1.r0, B1.r1, B1.r0 | L0: mov B1.r1, B0.r2 | L1: mov B2.r2, B1.r2 }
i13: { L1: mov B2.r0, B1.r0 }
i14: { U2: mul B2.r0, B2.r1, B2.r0 | L1: mov B2.r1, B1.r1 }
i15: { U2: mul B2.r0, B2.r1, B2.r2 | L2: mov B3.r0, B2.r0 }
i16: { L2: mov B3.r0, B2.r0 | L3: mov B0.r0, B3.r0 }
i17: { U0: add B0.r0, B0.r0, B0.r1 | L3: mov B0.r2, B3.r0 }
i18: { U0: add B0.r1, B0.r2, B0.r1 }
; output y0 in B0.r1
; output y1 in B0.r0
