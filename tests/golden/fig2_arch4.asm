; block fig2 on Arch4 — 6 instructions
i0: { DB: mov RF2.r1, DM[2]{c} }
i1: { DB: mov RF2.r0, DM[3]{d} }
i2: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DB: mov RF1.r1, DM[0]{a} }
i3: { DB: mov RF1.r0, DM[1]{b} }
i4: { U1: add RF1.r1, RF1.r1, RF1.r0 | DB: mov RF1.r0, RF2.r0 }
i5: { U1: sub RF1.r0, RF1.r1, RF1.r0 }
; output y in RF1.r0
