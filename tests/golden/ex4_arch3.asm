; block ex4 on Arch3 — 9 instructions
i0: { DBA: mov RF2.r1, DM[1]{a0} | DBB: mov RF2.r2, DM[0]{k} }
i1: { U2: mul RF2.r3, RF2.r1, RF2.r2 | DBB: mov RF3.r0, DM[3]{a1} | DBA: mov RF1.r1, DM[3]{a1} }
i2: { DBB: mov RF3.r1, DM[0]{k} | DBA: mov RF1.r0, DM[4]{b1} }
i3: { U3: mul RF3.r2, RF3.r0, RF3.r1 | U1: sub RF1.r0, RF1.r1, RF1.r0 | DBA: mov RF2.r0, DM[2]{b0} | DBB: mov RF3.r0, DM[4]{b1} }
i4: { U2: sub RF2.r1, RF2.r1, RF2.r0 | U3: add RF3.r2, RF3.r2, RF3.r0 }
i5: { U2: add RF2.r3, RF2.r3, RF2.r0 | LINK12: mov RF2.r0, RF1.r0 }
i6: { U2: mul RF2.r0, RF2.r3, RF2.r1 | DBB: mov RF3.r0, RF2.r0 }
i7: { U2: add RF2.r0, RF2.r0, RF2.r2 | U3: mul RF3.r0, RF3.r2, RF3.r0 }
i8: { U3: add RF3.r0, RF3.r0, RF3.r1 }
; output y0 in RF2.r0
; output y1 in RF3.r0
