; block ex5 on Dsp16 — 10 instructions
i0: { YB: mov RM.r2, DM[1]{ai} }
i1: { YB: mov RM.r1, DM[2]{br} }
i2: { MACU: mul RM.r0, RM.r2, RM.r1 | YB: mov RM.r4, DM[0]{ar} }
i3: { MACU: mul RM.r3, RM.r4, RM.r1 | YB: mov RM.r1, DM[3]{bi} }
i4: { MACU: msu RM.r3, RM.r2, RM.r1, RM.r3 | YB: mov RM.r2, DM[4]{cr} }
i5: { MACU: mac RM.r1, RM.r4, RM.r1, RM.r0 | YB: mov RM.r0, DM[5]{ci} }
i6: { MACU: add RM.r3, RM.r3, RM.r2 }
i7: { MACU: add RM.r1, RM.r1, RM.r0 }
i8: { MACU: add RM.r0, RM.r3, RM.r1 }
i9: { MACU: mul RM.r0, RM.r0, RM.r2 }
; output e in RM.r0
; output yi in RM.r1
; output yr in RM.r3
