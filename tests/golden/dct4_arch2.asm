; block dct4 on Arch2 — 16 instructions
i0: { DB: mov RF2.r1, DM[1]{s1} }
i1: { DB: mov RF2.r0, DM[2]{s2} }
i2: { U2: sub RF2.r2, RF2.r1, RF2.r0 | DB: mov RF2.r3, DM[0]{s0} }
i3: { U2: add RF2.r1, RF2.r1, RF2.r0 | DB: mov RF2.r0, DM[3]{s3} }
i4: { U2: sub RF2.r3, RF2.r3, RF2.r0 | DB: mov RF2.r0, DM[4]{c1} }
i5: { DB: mov RF1.r1, DM[0]{s0} }
i6: { DB: mov RF1.r0, DM[3]{s3} }
i7: { U1: add RF1.r3, RF1.r1, RF1.r0 | DB: mov RF1.r0, RF2.r1 }
i8: { U1: add RF1.r2, RF1.r3, RF1.r0 | U2: mul RF2.r1, RF2.r3, RF2.r0 | DB: mov DM[255]{spill0}, RF2.r1 }
i9: { U2: mul RF2.r0, RF2.r2, RF2.r0 | DB: mov RF1.r1, RF2.r1 }
i10: { DB: mov RF2.r1, DM[5]{c2} }
i11: { U2: mul RF2.r2, RF2.r2, RF2.r1 }
i12: { U2: mul RF2.r1, RF2.r3, RF2.r1 | DB: mov RF1.r0, RF2.r2 }
i13: { U1: add RF1.r0, RF1.r1, RF1.r0 | U2: sub RF2.r1, RF2.r1, RF2.r0 | DB: mov RF2.r2, RF1.r3 }
i14: { DB: mov RF2.r0, DM[255]{spill0} }
i15: { U2: sub RF2.r0, RF2.r2, RF2.r0 }
; output t0 in RF1.r2
; output t1 in RF1.r0
; output t2 in RF2.r0
; output t3 in RF2.r1
