; block ex4 on FzCstr_0007e8 — 10 instructions
i0: { B0: mov RF0.r2, DM[3]{a1} }
i1: { B0: mov RF0.r1, DM[0]{k} }
i2: { U2: mul RF0.r3, RF0.r2, RF0.r1 | B0: mov RF0.r0, DM[4]{b1} }
i3: { U0: add RF0.r3, RF0.r3, RF0.r0 | U2: sub RF0.r0, RF0.r2, RF0.r0 | B0: mov RF0.r2, DM[1]{a0} }
i4: { U2: mul RF0.r0, RF0.r3, RF0.r0 | B0: mov RF0.r3, DM[2]{b0} }
i5: { U2: mul RF0.r1, RF0.r2, RF0.r1 | B0: mov RF1.r1, DM[0]{k} }
i6: { U0: add RF0.r1, RF0.r1, RF0.r3 | U2: sub RF0.r0, RF0.r2, RF0.r3 | B0: mov RF1.r0, RF0.r0 }
i7: { U2: mul RF0.r0, RF0.r1, RF0.r0 | U1: add RF1.r0, RF1.r0, RF1.r1 }
i8: { B0: mov RF1.r2, RF0.r0 }
i9: { U1: add RF1.r1, RF1.r2, RF1.r1 }
; output y0 in RF1.r1
; output y1 in RF1.r0
