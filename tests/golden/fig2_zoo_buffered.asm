; block fig2 on FzBuf_0007e8 — 9 instructions
i0: { MP: mov B0.r0, DM[3]{d} }
i1: { MP: mov B0.r0, DM[2]{c} | L0: mov B1.r0, B0.r0 }
i2: { MP: mov B0.r1, DM[0]{a} | L0: mov B1.r0, B0.r0 | L1: mov B2.r0, B1.r0 }
i3: { MP: mov B0.r0, DM[1]{b} | L1: mov B2.r1, B1.r0 }
i4: { U0: add B0.r0, B0.r1, B0.r0 | U2: mul B2.r0, B2.r1, B2.r0 }
i5: { L0: mov B1.r1, B0.r0 | L2: mov B3.r0, B2.r0 }
i6: { L3: mov B0.r0, B3.r0 }
i7: { L0: mov B1.r0, B0.r0 }
i8: { U1: sub B1.r0, B1.r1, B1.r0 }
; output y in B1.r0
