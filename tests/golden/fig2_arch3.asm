; block fig2 on Arch3 — 4 instructions
i0: { DBA: mov RF2.r1, DM[0]{a} | DBB: mov RF2.r0, DM[1]{b} }
i1: { U2: add RF2.r2, RF2.r1, RF2.r0 | DBA: mov RF2.r1, DM[2]{c} | DBB: mov RF2.r0, DM[3]{d} }
i2: { U2: mul RF2.r0, RF2.r1, RF2.r0 }
i3: { U2: sub RF2.r0, RF2.r2, RF2.r0 }
; output y in RF2.r0
