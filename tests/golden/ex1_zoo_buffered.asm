; block ex1 on FzBuf_0007e8 — 13 instructions
i0: { MP: mov B0.r0, DM[2]{c} }
i1: { MP: mov B0.r1, DM[0]{a} | L0: mov B1.r0, B0.r0 }
i2: { MP: mov B0.r0, DM[1]{b} | L1: mov B2.r0, B1.r0 }
i3: { U0: add B0.r2, B0.r1, B0.r0 | MP: mov B0.r0, DM[1]{b} }
i4: { MP: mov B0.r1, DM[3]{d} | L0: mov B1.r0, B0.r0 }
i5: { L0: mov B1.r1, B0.r2 }
i6: { L1: mov B2.r1, B1.r1 }
i7: { U2: mul B2.r0, B2.r1, B2.r0 }
i8: { L2: mov B3.r0, B2.r0 }
i9: { L3: mov B0.r0, B3.r0 }
i10: { U0: add B0.r0, B0.r1, B0.r0 }
i11: { L0: mov B1.r1, B0.r0 }
i12: { U1: sub B1.r0, B1.r1, B1.r0 }
; output y in B1.r0
