; block ex2 on Arch1 — 10 instructions
i0: { DB: mov RF3.r1, DM[1]{x0} }
i1: { DB: mov RF3.r0, DM[2]{c0} }
i2: { U3: mul RF3.r1, RF3.r1, RF3.r0 | DB: mov RF3.r0, DM[0]{acc} }
i3: { U3: add RF3.r0, RF3.r0, RF3.r1 | DB: mov RF2.r1, DM[3]{x1} }
i4: { DB: mov RF2.r0, DM[4]{c1} }
i5: { U2: mul RF2.r2, RF2.r1, RF2.r0 | DB: mov RF2.r1, DM[5]{x2} }
i6: { DB: mov RF2.r0, DM[6]{c2} }
i7: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DB: mov RF2.r1, RF3.r0 }
i8: { U2: add RF2.r1, RF2.r1, RF2.r2 }
i9: { U2: add RF2.r0, RF2.r1, RF2.r0 }
; output y in RF2.r0
