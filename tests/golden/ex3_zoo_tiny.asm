; block ex3 on FzTiny_0007e8 — 16 instructions
i0: { B0: mov RF0.r1, DM[1]{a0} }
i1: { B0: mov RF0.r0, DM[2]{b0} }
i2: { U0: add RF0.r2, RF0.r1, RF0.r0 | B0: mov RF0.r1, DM[3]{a1} }
i3: { B0: mov RF0.r0, DM[4]{b1} }
i4: { U0: add RF0.r0, RF0.r1, RF0.r0 | B0: mov DM[81]{spill0}, RF0.r2 }
i5: { B0: mov DM[83]{spill2}, RF0.r0 }
i6: { B0: mov RF2.r1, DM[0]{k} }
i7: { B0: mov RF2.r0, DM[81]{scratch0} }
i8: { U2: mul RF2.r2, RF2.r0, RF2.r1 | B0: mov RF2.r0, DM[83]{scratch2} }
i9: { U2: mul RF2.r0, RF2.r0, RF2.r1 | B0: mov DM[82]{spill1}, RF2.r2 }
i10: { B0: mov DM[84]{spill3}, RF2.r0 }
i11: { B0: mov RF1.r1, DM[82]{scratch1} }
i12: { B0: mov RF1.r0, DM[2]{b0} }
i13: { U1: sub RF1.r2, RF1.r1, RF1.r0 | B0: mov RF1.r1, DM[84]{scratch3} }
i14: { B0: mov RF1.r0, DM[4]{b1} }
i15: { U1: sub RF1.r0, RF1.r1, RF1.r0 }
; output y0 in RF1.r2
; output y1 in RF1.r0
