; block fig6 on Dsp16 — 7 instructions
i0: { YB: mov RM.r1, DM[0]{a} }
i1: { YB: mov RM.r0, DM[1]{b} }
i2: { MACU: add RM.r2, RM.r1, RM.r0 | YB: mov RM.r1, DM[2]{c} }
i3: { YB: mov RM.r0, DM[3]{d} }
i4: { MACU: msu RM.r0, RM.r1, RM.r0, RM.r2 }
i5: { YB: mov RL.r0, RM.r0 }
i6: { LU: compl RL.r0, RL.r0 }
; output y in RL.r0
