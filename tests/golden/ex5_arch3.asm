; block ex5 on Arch3 — 12 instructions
i0: { DBA: mov RF2.r1, DM[0]{ar} | DBB: mov RF2.r0, DM[2]{br} }
i1: { U2: mul RF2.r2, RF2.r1, RF2.r0 | DBA: mov RF2.r1, DM[1]{ai} | DBB: mov RF2.r0, DM[3]{bi} }
i2: { U2: mul RF2.r0, RF2.r1, RF2.r0 | DBB: mov RF3.r1, DM[0]{ar} }
i3: { U2: sub RF2.r0, RF2.r2, RF2.r0 | DBB: mov RF3.r0, DM[3]{bi} }
i4: { U3: mul RF3.r2, RF3.r1, RF3.r0 | DBB: mov RF3.r1, DM[1]{ai} }
i5: { DBB: mov RF3.r0, DM[2]{br} }
i6: { U3: mul RF3.r0, RF3.r1, RF3.r0 | DBB: mov RF3.r3, DM[4]{cr} }
i7: { U3: add RF3.r1, RF3.r2, RF3.r0 | DBB: mov RF3.r0, DM[5]{ci} }
i8: { U3: add RF3.r1, RF3.r1, RF3.r0 | DBB: mov RF3.r0, RF2.r0 }
i9: { U3: add RF3.r2, RF3.r0, RF3.r3 }
i10: { U3: add RF3.r0, RF3.r2, RF3.r1 }
i11: { U3: mul RF3.r0, RF3.r0, RF3.r3 }
; output e in RF3.r0
; output yi in RF3.r1
; output yr in RF3.r2
