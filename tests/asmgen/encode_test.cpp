#include "asmgen/encode.h"

#include <gtest/gtest.h>

#include "core/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/error.h"

namespace aviv {
namespace {

struct Encoded {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;
  RegAssignment regs;
  SymbolTable symbols;
  CodeImage image;

  Encoded(const std::string& block, const std::string& machineName,
          int regsN = 4, CodegenOptions options = {})
      : dag(loadBlock(block)),
        machine(loadMachine(machineName).withRegisterCount(regsN)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, options)),
        regs(allocateRegisters(core.graph, core.schedule)),
        image(encodeBlock(core.graph, core.schedule, regs, symbols)) {}
};

TEST(SymbolTable, InternAssignsStableAddresses) {
  SymbolTable symbols;
  const int a = symbols.intern("a");
  const int b = symbols.intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(symbols.intern("a"), a);
  EXPECT_EQ(symbols.lookup("b"), b);
  EXPECT_TRUE(symbols.contains("a"));
  EXPECT_FALSE(symbols.contains("zz"));
  EXPECT_THROW((void)symbols.lookup("zz"), Error);
  EXPECT_EQ(symbols.sizeWords(), 2);
}

TEST(Encode, InstructionCountPreserved) {
  const Encoded e("ex1", "arch1");
  EXPECT_EQ(e.image.numInstructions(),
            e.core.schedule.numInstructions());
}

TEST(Encode, AllInputsGetAddresses) {
  const Encoded e("ex2", "arch1");
  for (const std::string& input : e.dag.inputNames())
    EXPECT_TRUE(e.symbols.contains(input)) << input;
}

TEST(Encode, OutputsBoundToRegistersByDefault) {
  const Encoded e("ex1", "arch1");
  ASSERT_EQ(e.image.outputs.size(), 1u);
  EXPECT_FALSE(e.image.outputs[0].inMemory);
  EXPECT_GE(e.image.outputs[0].reg, 0);
}

TEST(Encode, OutputsBoundToMemoryWhenRequested) {
  CodegenOptions options;
  options.outputsToMemory = true;
  const Encoded e("ex1", "arch1", 4, options);
  ASSERT_EQ(e.image.outputs.size(), 1u);
  EXPECT_TRUE(e.image.outputs[0].inMemory);
  EXPECT_GE(e.image.outputs[0].memAddr, 0);
}

TEST(Encode, SpillSlotsPlacedAtTopOfMemory) {
  const Encoded e("ex4", "arch1", 2);
  ASSERT_GT(e.image.numSpillSlots, 0);
  const int memWords = e.machine.memory(e.machine.dataMemory()).sizeWords;
  EXPECT_EQ(e.image.spillBase, memWords - e.image.numSpillSlots);
  EXPECT_LE(e.symbols.sizeWords(), e.image.spillBase);
}

TEST(Encode, RegisterIndicesWithinBankBounds) {
  const Encoded e("ex5", "arch1", 2);
  for (const EncInstr& instr : e.image.instrs) {
    for (const EncOp& op : instr.ops) {
      const int bankSize =
          e.machine.regFile(e.machine.unit(op.unit).regFile).numRegs;
      EXPECT_GE(op.dstReg, 0);
      EXPECT_LT(op.dstReg, bankSize);
      for (const EncOperand& src : op.srcs) {
        if (!src.isImm) {
          EXPECT_GE(src.reg, 0);
          EXPECT_LT(src.reg, bankSize);
        }
      }
    }
    for (const EncXfer& xfer : instr.xfers) {
      if (xfer.from.isMemory() || xfer.to.isMemory())
        EXPECT_GE(xfer.memAddr, 0);
    }
  }
}

TEST(Encode, ImmediatesEncodedInline) {
  SymbolTable symbols;
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 3 + 7; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult core = coverBlock(dag, machine, dbs, CodegenOptions{});
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  std::vector<int64_t> imms;
  for (const EncInstr& instr : image.instrs)
    for (const EncOp& op : instr.ops)
      for (const EncOperand& src : op.srcs)
        if (src.isImm) imms.push_back(src.imm);
  ASSERT_EQ(imms.size(), 2u);
  EXPECT_NE(std::find(imms.begin(), imms.end(), 3), imms.end());
  EXPECT_NE(std::find(imms.begin(), imms.end(), 7), imms.end());
}

TEST(Emit, AsmTextListsEveryInstruction) {
  const Encoded e("ex1", "arch1");
  const std::string text = e.image.asmText(e.machine);
  for (int i = 0; i < e.image.numInstructions(); ++i)
    EXPECT_NE(text.find("i" + std::to_string(i) + ":"), std::string::npos);
  EXPECT_NE(text.find("output y"), std::string::npos);
}

TEST(Emit, AsmTextShowsMnemonicsAndVariables) {
  const Encoded e("ex1", "arch1");
  const std::string text = e.image.asmText(e.machine);
  EXPECT_NE(text.find("mov"), std::string::npos);
  EXPECT_NE(text.find("{a}"), std::string::npos);  // variable comment
  EXPECT_NE(text.find("DM["), std::string::npos);
}

TEST(Emit, SpillTaggedInListing) {
  const Encoded e("ex4", "arch1", 2);
  const std::string text = e.image.asmText(e.machine);
  EXPECT_NE(text.find("{spill"), std::string::npos);
}

TEST(Encode, TooSmallDataMemoryRejected) {
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 4;
      memory DM size 2 data;
      bus X;
      unit U regfile A { op ADD; op SUB; op MUL; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex2");  // 7 inputs > 2 words
  const CoreResult core = coverBlock(dag, machine, dbs, CodegenOptions{});
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  EXPECT_THROW(
      (void)encodeBlock(core.graph, core.schedule, regs, symbols), Error);
}

}  // namespace
}  // namespace aviv
