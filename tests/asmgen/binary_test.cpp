#include "asmgen/binary.h"

#include <gtest/gtest.h>

#include "asmgen/encode.h"
#include "core/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "regalloc/regalloc.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/rng.h"

namespace aviv {
namespace {

struct Assembled {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;
  RegAssignment regs;
  SymbolTable symbols;
  CodeImage image;
  BinaryImage binary;

  Assembled(const std::string& block, const std::string& machineName,
            CodegenOptions options = {})
      : dag(loadBlock(block)),
        machine(loadMachine(machineName)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, options)),
        regs(allocateRegisters(core.graph, core.schedule)),
        image(encodeBlock(core.graph, core.schedule, regs, symbols)),
        binary(assembleBinary(image, machine, symbols)) {}
};

TEST(BinaryFormat, LayoutCoversAllSlots) {
  const Machine machine = loadMachine("arch1");
  const BinaryFormat format(machine);
  // Three unit slots + one bus slot; total bits positive and consistent.
  int total = 0;
  for (UnitId u = 0; u < machine.units().size(); ++u) {
    EXPECT_EQ(format.unitSlot(u).offset, total);
    total += format.unitSlot(u).totalBits;
  }
  for (BusId b = 0; b < machine.buses().size(); ++b) {
    for (int k = 0; k < format.busSlotCount(b); ++k) {
      EXPECT_EQ(format.busSlot(b, k).offset, total);
      total += format.busSlot(b, k).totalBits;
    }
  }
  EXPECT_EQ(format.bitsPerInstruction(), total);
  EXPECT_GE(format.wordsPerInstruction(), 1);
}

TEST(BinaryFormat, MultiCapacityBusGetsMultipleSlots) {
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 4;
      memory DM size 64 data;
      bus X capacity 3;
      unit U regfile A { op ADD; }
      transfer complete bus X;
    }
  )");
  const BinaryFormat format(machine);
  EXPECT_EQ(format.busSlotCount(0), 3);
}

TEST(BinaryFormat, DescribeMentionsEveryUnitAndBus) {
  const Machine machine = loadMachine("arch3");
  const std::string desc = BinaryFormat(machine).describe();
  for (const FunctionalUnit& unit : machine.units())
    EXPECT_NE(desc.find("unit " + unit.name), std::string::npos);
  for (const Bus& bus : machine.buses())
    EXPECT_NE(desc.find("bus " + bus.name), std::string::npos);
}

TEST(Binary, RoundTripDisassemblyMatchesListing) {
  for (const char* block : {"ex1", "ex2", "ex3"}) {
    const Assembled a(block, "arch1");
    const CodeImage decoded = disassembleBinary(a.binary, a.machine);
    EXPECT_EQ(decoded.asmText(a.machine), a.image.asmText(a.machine))
        << block;
  }
}

TEST(Binary, RoundTripSimulatesIdentically) {
  const Assembled a("ex4", "arch1");
  const CodeImage decoded = disassembleBinary(a.binary, a.machine);
  const Simulator sim(a.machine);
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : a.dag.inputNames())
      inputs[name] = rng.intIn(-100, 100);
    EXPECT_EQ(sim.runBlockFresh(decoded, a.symbols, inputs),
              evalDagOutputs(a.dag, inputs));
  }
}

TEST(Binary, SpilledCodeRoundTrips) {
  const BlockDag dag = loadBlock("ex4");
  const Machine machine = loadMachine("arch1").withRegisterCount(2);
  const MachineDatabases dbs(machine);
  const CoreResult core = coverBlock(dag, machine, dbs, CodegenOptions{});
  ASSERT_GT(core.stats.cover.spillsInserted, 0);
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  const BinaryImage binary = assembleBinary(image, machine, symbols);
  const CodeImage decoded = disassembleBinary(binary, machine);
  EXPECT_EQ(decoded.asmText(machine), image.asmText(machine));
}

TEST(Binary, SerializationRoundTrips) {
  const Assembled a("ex2", "arch1");
  const std::string text = serializeBinary(a.binary);
  const BinaryImage parsed = parseBinary(text);
  EXPECT_EQ(parsed.machineName, a.binary.machineName);
  EXPECT_EQ(parsed.blockName, a.binary.blockName);
  EXPECT_EQ(parsed.bitsPerInstruction, a.binary.bitsPerInstruction);
  EXPECT_EQ(parsed.numInstructions, a.binary.numInstructions);
  EXPECT_EQ(parsed.code, a.binary.code);
  EXPECT_EQ(parsed.symbols, a.binary.symbols);
  EXPECT_EQ(parsed.spillBase, a.binary.spillBase);
  // Full round trip through text -> image -> listing.
  const CodeImage decoded = disassembleBinary(parsed, a.machine);
  EXPECT_EQ(decoded.asmText(a.machine), a.image.asmText(a.machine));
}

TEST(Binary, RomBytesMatchesWidthTimesCount) {
  const Assembled a("ex1", "arch1");
  const size_t expected =
      static_cast<size_t>(a.binary.numInstructions) *
      static_cast<size_t>((a.binary.bitsPerInstruction + 7) / 8);
  EXPECT_EQ(a.binary.romBytes(), expected);
  EXPECT_GT(a.binary.romBytes(), 0u);
}

TEST(Binary, LargeImmediateRejectedWithoutConstPool) {
  const BlockDag dag = parseBlock(
      "block t { input a; output y; y = a + 1000000; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult core = coverBlock(dag, machine, dbs, CodegenOptions{});
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  EXPECT_THROW((void)assembleBinary(image, machine, symbols), Error);
}

TEST(Binary, LargeConstantWorksThroughConstPool) {
  const BlockDag dag = parseBlock(
      "block t { input a; output y; y = a + 1000000; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  CodegenOptions options;
  options.constantsInMemory = true;
  const CoreResult core = coverBlock(dag, machine, dbs, options);
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  ASSERT_FALSE(image.constPool.empty());
  const BinaryImage binary = assembleBinary(image, machine, symbols);
  const CodeImage decoded = disassembleBinary(binary, machine);
  const Simulator sim(machine);
  EXPECT_EQ(sim.runBlockFresh(decoded, symbols, {{"a", 5}}).at("y"),
            1000005);
}

TEST(Binary, NegativeImmediatesSignExtend) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * (0 - 3); }");
  // 0-3 folds? No folding pass is run; NEG path: (0 - 3) builds SUB with
  // const operands — use an explicit small negative via unary minus.
  const BlockDag dag2 =
      parseBlock("block t { input a; output y; y = a + 5 - 9; }");
  (void)dag;
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult core = coverBlock(dag2, machine, dbs, CodegenOptions{});
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  const BinaryImage binary = assembleBinary(image, machine, symbols);
  const CodeImage decoded = disassembleBinary(binary, machine);
  const Simulator sim(machine);
  EXPECT_EQ(sim.runBlockFresh(decoded, symbols, {{"a", 1}}).at("y"), -3);
}

TEST(Binary, WrongMachineRejected) {
  const Assembled a("ex1", "arch1");
  const Machine other = loadMachine("arch2");
  EXPECT_THROW((void)disassembleBinary(a.binary, other), Error);
}

TEST(Binary, MalformedTextRejected) {
  EXPECT_THROW((void)parseBinary("not a binary"), Error);
  EXPECT_THROW((void)parseBinary("AVIVBIN 99\n"), Error);
  const Assembled a("ex1", "arch1");
  std::string text = serializeBinary(a.binary);
  text.resize(text.size() / 2);  // truncate mid-code
  EXPECT_THROW((void)parseBinary(text), Error);
}

TEST(Binary, ConstPoolSurvivesSerialization) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 123456; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  CodegenOptions options;
  options.constantsInMemory = true;
  const CoreResult core = coverBlock(dag, machine, dbs, options);
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  const BinaryImage binary = assembleBinary(image, machine, symbols);
  const BinaryImage parsed = parseBinary(serializeBinary(binary));
  EXPECT_EQ(parsed.constPool, binary.constPool);
  ASSERT_FALSE(parsed.constPool.empty());
  EXPECT_EQ(parsed.constPool[0].second, 123456);
}

}  // namespace
}  // namespace aviv
