#include <gtest/gtest.h>

#include "asmgen/encode.h"
#include "baseline/optimal.h"
#include "baseline/sequential.h"
#include "core/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "regalloc/regalloc.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace aviv {
namespace {

TEST(SequentialBaseline, ProducesValidSchedules) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(block);
    const BaselineResult result =
        sequentialCodegen(dag, machine, dbs, CodegenOptions{});
    // verifySchedule runs inside; shape checks:
    EXPECT_GT(result.schedule.numInstructions(), 0) << block;
  }
}

TEST(SequentialBaseline, GeneratedCodeIsCorrect) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  Rng rng(4242);
  for (const char* block : {"ex1", "ex3", "ex5"}) {
    const BlockDag dag = loadBlock(block);
    const BaselineResult result =
        sequentialCodegen(dag, machine, dbs, CodegenOptions{});
    const RegAssignment regs =
        allocateRegisters(result.graph, result.schedule);
    SymbolTable symbols;
    const CodeImage image =
        encodeBlock(result.graph, result.schedule, regs, symbols);
    const Simulator sim(machine);
    for (int trial = 0; trial < 5; ++trial) {
      std::map<std::string, int64_t> inputs;
      for (const std::string& name : dag.inputNames())
        inputs[name] = rng.intIn(-100, 100);
      EXPECT_EQ(sim.runBlockFresh(image, symbols, inputs),
                evalDagOutputs(dag, inputs))
          << block;
    }
  }
}

TEST(SequentialBaseline, ComplexFusionLeavesNoDuplicateOps) {
  // Regression: the local selector used to keep a standalone MUL *and* a
  // MAC that fused it, leaving a dead duplicate op that broke liveness.
  const Machine machine = loadMachine("arch4");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex2", "ex5", "biquad"}) {
    const BlockDag dag = loadBlock(block);
    const BaselineResult result =
        sequentialCodegen(dag, machine, dbs, CodegenOptions{});
    // Every op value must be consumed or be an output.
    DynBitset liveOut(result.graph.size());
    for (const auto& [name, def] : result.graph.outputDefs())
      if (def != kNoAg) liveOut.set(def);
    for (AgId id = 0; id < result.graph.size(); ++id) {
      const AgNode& n = result.graph.node(id);
      if (n.kind != AgKind::kOp) continue;
      EXPECT_TRUE(!n.succs.empty() || liveOut.test(id))
          << block << ": dead op " << result.graph.describe(id);
    }
  }
}

TEST(SequentialBaseline, AvivNeverWorse) {
  // The paper's core claim: concurrent decisions beat phase-ordered ones.
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(block);
    const CoreResult aviv = coverBlock(dag, machine, dbs, CodegenOptions{});
    const BaselineResult seq =
        sequentialCodegen(dag, machine, dbs, CodegenOptions{});
    EXPECT_LE(aviv.schedule.numInstructions(),
              seq.schedule.numInstructions())
        << block;
  }
}

TEST(OptimalSearch, ProvenOptimalOnTinyBlock) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag =
      parseBlock("block t { input a, b; output y; y = a + b; }");
  OptimalOptions options;
  const OptimalResult result = optimalCodeSize(dag, machine, dbs, options);
  EXPECT_TRUE(result.proven);
  // Two loads (single bus) then the add: 3 cycles.
  EXPECT_EQ(result.instructions, 3);
}

TEST(OptimalSearch, NeverWorseThanAviv) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex1", "ex2", "ex3"}) {
    const BlockDag dag = loadBlock(block);
    const CoreResult aviv = coverBlock(dag, machine, dbs, CodegenOptions{});
    OptimalOptions options;
    options.incumbent = aviv.schedule.numInstructions();
    options.timeLimitSeconds = 60;
    const OptimalResult result = optimalCodeSize(dag, machine, dbs, options);
    ASSERT_TRUE(result.proven) << block;
    EXPECT_LE(result.instructions, aviv.schedule.numInstructions()) << block;
  }
}

TEST(OptimalSearch, IncumbentPrimingPreserved) {
  // With an unbeatable incumbent the search reports it back unchanged.
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag =
      parseBlock("block t { input a, b; output y; y = a + b; }");
  OptimalOptions options;
  options.incumbent = 3;  // the true optimum
  const OptimalResult result = optimalCodeSize(dag, machine, dbs, options);
  EXPECT_EQ(result.instructions, 3);
  EXPECT_TRUE(result.proven);
}

TEST(OptimalSearch, HeuristicsOffMatchesOptimalOnPaperBlocks) {
  // Our strongest quality claim (mirrors the paper's parenthesized column):
  // exhaustive-assignment AVIV achieves the proven optimum on ex1-ex3.
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex1", "ex2", "ex3"}) {
    const BlockDag dag = loadBlock(block);
    CodegenOptions off = CodegenOptions::heuristicsOff();
    const CoreResult aviv = coverBlock(dag, machine, dbs, off);
    OptimalOptions options;
    options.incumbent = aviv.schedule.numInstructions();
    options.timeLimitSeconds = 60;
    const OptimalResult result = optimalCodeSize(dag, machine, dbs, options);
    ASSERT_TRUE(result.proven) << block;
    EXPECT_EQ(result.instructions, aviv.schedule.numInstructions()) << block;
  }
}

}  // namespace
}  // namespace aviv
