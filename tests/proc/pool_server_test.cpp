// CompileServer + WorkerPool end to end (the `avivd --listen
// --isolate-workers` wiring): a client's request is dispatched to an
// isolated worker process, and the zero-lost-responses contract holds all
// the way through graceful drain — a stop requested WHILE the only worker
// is hung must still deliver the (crash-retried) response before the
// connection closes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "proc/pool.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"

#if defined(__SANITIZE_THREAD__)
#define AVIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AVIV_TSAN 1
#endif
#endif
#ifdef AVIV_TSAN
#define AVIV_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based worker tests are unsupported under TSan"
#else
#define AVIV_SKIP_UNDER_TSAN() (void)0
#endif

namespace aviv::proc {
namespace {

using namespace std::chrono_literals;

net::Endpoint uniqueUnixEndpoint() {
  static int counter = 0;
  net::Endpoint endpoint;
  endpoint.isUnix = true;
  endpoint.path = "/tmp/aviv_proc_server_test_" + std::to_string(::getpid()) +
                  "_" + std::to_string(++counter) + ".sock";
  return endpoint;
}

// The avivd handler shape: one request line through the pool, crash
// provenance onto the response.
net::RequestHandler poolHandler(std::shared_ptr<WorkerPool> pool) {
  return [pool](const net::NetRequest& request) {
    const WorkerResult result = pool->execute(request.line, request.wantAsm);
    net::NetResponse response;
    response.type = result.type;
    response.detail = result.detail;
    response.body = result.body;
    response.crashRetries = result.crashes;
    return response;
  };
}

// Minimal blocking frame client.
class Client {
 public:
  explicit Client(const net::Endpoint& endpoint)
      : fd_(net::connectTo(endpoint)) {}

  void sendRequest(uint64_t id, const std::string& line) {
    net::RequestPayload payload;
    payload.id = id;
    payload.line = line;
    const std::string frame = net::encodeFrame(
        net::FrameType::kRequest, net::encodeRequestPayload(payload));
    size_t off = 0;
    while (off < frame.size()) {
      const net::IoResult io =
          net::writeSome(fd_.get(), frame.data() + off, frame.size() - off);
      ASSERT_EQ(io.error, 0);
      off += static_cast<size_t>(io.n);
    }
  }

  bool recvFrame(net::Frame* out) {
    char buf[4096];
    for (;;) {
      const net::FrameDecoder::Status status = decoder_.next(out);
      if (status == net::FrameDecoder::Status::kFrame) return true;
      if (status == net::FrameDecoder::Status::kError) return false;
      const net::IoResult io = net::readSome(fd_.get(), buf, sizeof(buf));
      if (io.eof || io.error != 0) return false;
      decoder_.feed(buf, static_cast<size_t>(io.n));
    }
  }

 private:
  net::Fd fd_;
  net::FrameDecoder decoder_;
};

TEST(IsolatedServer, DrainWhileWorkerHungLosesNoResponse) {
  AVIV_SKIP_UNDER_TSAN();
  PoolConfig poolConfig;
  poolConfig.workers = 1;
  poolConfig.hardDeadlineMs = 400;
  poolConfig.heartbeatTimeoutMs = 5000;
  poolConfig.crashLoopK = 10;
  poolConfig.respawnBackoffMs = 20;
  poolConfig.env.cacheEnabled = false;
  // The single worker hangs on its first request; its respawn is clean.
  FailPoints::instance().configure("worker-hang");
  auto pool = std::make_shared<WorkerPool>(poolConfig);
  FailPoints::instance().clear();

  net::ServerConfig serverConfig;
  serverConfig.listen = uniqueUnixEndpoint();
  serverConfig.pollIntervalMs = 10;
  serverConfig.drainTimeoutMs = 20000;
  ThreadPool threads(2);
  net::CompileServer server(serverConfig, threads, poolHandler(pool));
  const net::Endpoint bound = server.start();
  std::thread serveThread([&server] { server.serve(); });

  Client client(bound);
  client.sendRequest(7, "machine=arch1 block=ex1");
  // Let the request reach the hung worker, then ask for shutdown while it
  // is still in flight: drain must wait out the SIGKILL + retry.
  std::this_thread::sleep_for(150ms);
  server.requestStop();

  net::Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame)) << "response lost across drain";
  EXPECT_EQ(frame.type, net::FrameType::kOk);
  const net::ResponsePayload response =
      net::decodeResponsePayload(frame.payload);
  EXPECT_EQ(response.id, 7u);
  EXPECT_NE(response.detail.find("crashed=1"), std::string::npos)
      << response.detail;

  serveThread.join();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses, 1);
  EXPECT_EQ(stats.droppedResponses, 0);
  EXPECT_EQ(stats.crashRetried, 1);
  EXPECT_EQ(pool->stats().deadlineKills, 1u);
}

TEST(IsolatedServer, CleanRequestsFlowThroughThePool) {
  AVIV_SKIP_UNDER_TSAN();
  PoolConfig poolConfig;
  poolConfig.workers = 2;
  poolConfig.env.cacheEnabled = false;
  auto pool = std::make_shared<WorkerPool>(poolConfig);

  net::ServerConfig serverConfig;
  serverConfig.listen = uniqueUnixEndpoint();
  serverConfig.pollIntervalMs = 10;
  ThreadPool threads(2);
  net::CompileServer server(serverConfig, threads, poolHandler(pool));
  const net::Endpoint bound = server.start();
  std::thread serveThread([&server] { server.serve(); });

  Client client(bound);
  client.sendRequest(1, "machine=arch1 block=ex1");
  client.sendRequest(2, "machine=arch1 block=ex1 timeout=2");
  for (int i = 0; i < 2; ++i) {
    net::Frame frame;
    ASSERT_TRUE(client.recvFrame(&frame));
    EXPECT_EQ(frame.type, net::FrameType::kOk);
    const net::ResponsePayload response =
        net::decodeResponsePayload(frame.payload);
    EXPECT_NE(response.detail.find("block=ex1"), std::string::npos);
  }
  server.requestStop();
  serveThread.join();
  EXPECT_EQ(server.stats().droppedResponses, 0);
}

}  // namespace
}  // namespace aviv::proc
