// Crash repro bundles (src/proc/crash_repro.h): capture -> load -> replay
// round trips, bundle relocatability (machine=/block= rewritten to
// bundle-local copies), kind=crash vs kind=kill replay semantics, partial
// bundles for unparseable request lines, and the discriminator that keeps
// `fuzz_gen --replay` from mistaking fuzz bundles for crash bundles.
#include "proc/crash_repro.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "support/error.h"
#include "support/io.h"

#if defined(__SANITIZE_THREAD__)
#define AVIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AVIV_TSAN 1
#endif
#endif
#ifdef AVIV_TSAN
#define AVIV_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based replay tests are unsupported under TSan"
#else
#define AVIV_SKIP_UNDER_TSAN() (void)0
#endif

namespace aviv::proc {
namespace {

namespace fs = std::filesystem;

// Raw waitpid statuses (Linux layout): low 7 bits = terminating signal.
constexpr int kStatusSigabrt = 6;
constexpr int kStatusSigsegv = 11;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (fs::temp_directory_path() /
             ("aviv_repro_test_" + std::to_string(::getpid()) + "_" + tag +
              "_" + std::to_string(++counter)))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CrashCapture abortCapture(const std::string& crashDir) {
  CrashCapture capture;
  capture.crashDir = crashDir;
  capture.requestLine = "machine=arch1 block=ex1 timeout=2";
  capture.wantAsm = true;
  capture.exitStatus = kStatusSigabrt;
  capture.failpointSite = "worker-abort";
  capture.deadlineMs = 5000;
  capture.sequence = 7;
  return capture;
}

TEST(CrashRepro, WriteLoadRoundTripsAndRelocates) {
  TempDir tmp("roundtrip");
  const std::string dir = writeCrashRepro(abortCapture(tmp.path()));
  ASSERT_FALSE(dir.empty());
  EXPECT_NE(dir.find("crash-7-worker-abort"), std::string::npos);
  EXPECT_TRUE(isCrashRepro(dir));
  EXPECT_TRUE(fs::exists(dir + "/machine.isdl"));
  EXPECT_TRUE(fs::exists(dir + "/block.blk"));
  EXPECT_TRUE(fs::exists(dir + "/request.txt"));

  const CrashRepro repro = loadCrashRepro(dir);
  EXPECT_EQ(repro.kind, "crash");
  EXPECT_TRUE(repro.wantAsm);
  EXPECT_EQ(repro.failpointSite, "worker-abort");
  EXPECT_EQ(repro.deadlineMs, 5000);
  EXPECT_NE(repro.exitDesc.find("signal 6"), std::string::npos);
  // Relocatable: the loaded line points at the bundle's OWN copies, so the
  // bundle replays wherever it is moved — the original specs are gone.
  EXPECT_NE(repro.requestLine.find(dir + "/machine.isdl"), std::string::npos);
  EXPECT_NE(repro.requestLine.find(dir + "/block.blk"), std::string::npos);
  EXPECT_NE(repro.requestLine.find("timeout=2"), std::string::npos);
  EXPECT_EQ(repro.requestLine.find("machine=arch1"), std::string::npos);
}

TEST(CrashRepro, AbortBundleReplaysStandalone) {
  AVIV_SKIP_UNDER_TSAN();
  TempDir tmp("abort");
  const std::string dir = writeCrashRepro(abortCapture(tmp.path()));
  ASSERT_FALSE(dir.empty());
  const CrashReplayResult replay = replayCrashRepro(loadCrashRepro(dir));
  EXPECT_TRUE(replay.reproduced) << replay.detail;
  EXPECT_NE(replay.detail.find("signal 6"), std::string::npos);
}

TEST(CrashRepro, KillBundleReproducesByOutlivingTheDeadline) {
  AVIV_SKIP_UNDER_TSAN();
  TempDir tmp("kill");
  CrashCapture capture = abortCapture(tmp.path());
  capture.exitStatus = 9;  // SIGKILL, as the supervisor delivered it
  capture.killedByDeadline = true;
  capture.failpointSite = "worker-hang";
  capture.deadlineMs = 300;
  const std::string dir = writeCrashRepro(capture);
  ASSERT_FALSE(dir.empty());

  const CrashRepro repro = loadCrashRepro(dir);
  EXPECT_EQ(repro.kind, "kill");
  const CrashReplayResult replay = replayCrashRepro(repro);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
  EXPECT_NE(replay.detail.find("still running"), std::string::npos);
}

TEST(CrashRepro, CleanRequestDoesNotReproduceACrash) {
  AVIV_SKIP_UNDER_TSAN();
  TempDir tmp("clean");
  // A recorded SIGSEGV with no fail point behind it: the replay child runs
  // the request cleanly, so the bundle must honestly report no repro.
  CrashCapture capture = abortCapture(tmp.path());
  capture.exitStatus = kStatusSigsegv;
  capture.failpointSite.clear();
  capture.wantAsm = false;
  const std::string dir = writeCrashRepro(capture);
  ASSERT_FALSE(dir.empty());
  const CrashReplayResult replay = replayCrashRepro(loadCrashRepro(dir));
  EXPECT_FALSE(replay.reproduced);
  EXPECT_NE(replay.detail.find("exit code 0"), std::string::npos);
}

TEST(CrashRepro, UnparseableLineStillGetsAPartialBundle) {
  TempDir tmp("partial");
  CrashCapture capture = abortCapture(tmp.path());
  capture.requestLine = "this is not a request line";
  capture.failpointSite.clear();
  capture.exitStatus = kStatusSigsegv;
  const std::string dir = writeCrashRepro(capture);
  ASSERT_FALSE(dir.empty());
  // No sources to resolve, but the evidence survives: request + meta.
  EXPECT_FALSE(fs::exists(dir + "/machine.isdl"));
  EXPECT_TRUE(isCrashRepro(dir));
  const CrashRepro repro = loadCrashRepro(dir);
  EXPECT_EQ(repro.requestLine, "this is not a request line");
}

TEST(CrashRepro, DiscriminatorRejectsNonCrashBundles) {
  TempDir tmp("notbundle");
  EXPECT_FALSE(isCrashRepro(tmp.path() + "/missing"));
  // A fuzz-style bundle has a meta.txt but no kind=crash|kill line.
  writeFile(tmp.path() + "/meta.txt", "signature=miscompile\nseed=1\n");
  EXPECT_FALSE(isCrashRepro(tmp.path()));
  EXPECT_THROW((void)loadCrashRepro(tmp.path()), Error);
}

TEST(CrashRepro, MalformedMetaValueThrowsNotCrashes) {
  TempDir tmp("badmeta");
  writeFile(tmp.path() + "/meta.txt",
            "kind=crash\nexit=signal 11\nrssLimitBytes=lots\n");
  writeFile(tmp.path() + "/request.txt", "machine=arch1 block=ex1\n");
  EXPECT_THROW((void)loadCrashRepro(tmp.path()), Error);
}

TEST(CrashRepro, CaptureIsBestEffortNeverThrows) {
  CrashCapture capture = abortCapture("");
  EXPECT_EQ(writeCrashRepro(capture), "");  // capture disabled
  capture.crashDir = "/proc/definitely/not/writable";
  EXPECT_EQ(writeCrashRepro(capture), "");  // capture failed, not fatal
}

}  // namespace
}  // namespace aviv::proc
