// WorkerPool supervision semantics (src/proc/pool.h): crash -> retry once
// on a healthy worker (zero lost responses), double crash -> typed kError,
// hard-deadline SIGKILL of hung workers, torn mid-write frames handled as
// crashes without wedging the supervisor, the per-line crash-loop breaker
// tripping and recovering, rlimit-backed OOM containment, crash repro
// bundles that replay standalone, and the onCrash hook.
//
// Every test forks real worker processes through a real socketpair; the
// crash-class fail points (worker-segv & co.) are configured in the parent
// BEFORE the pool forks, so the initial fleet inherits them armed while
// any respawn after FailPoints::clear() comes up clean — which is exactly
// the "crash once, retry on a healthy worker" shape the pool guarantees.
#include "proc/pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "proc/crash_repro.h"
#include "support/failpoint.h"
#include "support/io.h"

// Fork-based tests are unsupported under TSan (the child inherits a
// runtime that expects the parent's threads); they skip rather than hang.
#if defined(__SANITIZE_THREAD__)
#define AVIV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AVIV_TSAN 1
#endif
#endif
#ifdef AVIV_TSAN
#define AVIV_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based worker tests are unsupported under TSan"
#else
#define AVIV_SKIP_UNDER_TSAN() (void)0
#endif

namespace aviv::proc {
namespace {

namespace fs = std::filesystem;

// Clears the global fail-point table on every exit path of a test.
struct FailPointGuard {
  ~FailPointGuard() { FailPoints::instance().clear(); }
};

std::string uniqueTempDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = (fs::temp_directory_path() /
                           ("aviv_pool_test_" + std::to_string(::getpid()) +
                            "_" + tag + "_" + std::to_string(++counter)))
                              .string();
  fs::remove_all(dir);
  return dir;
}

PoolConfig quickConfig() {
  PoolConfig config;
  config.workers = 1;
  config.hardDeadlineMs = 20000;
  config.heartbeatTimeoutMs = 5000;
  config.crashLoopK = 10;  // breaker out of the way unless a test wants it
  config.respawnBackoffMs = 20;
  config.env.cacheEnabled = false;
  return config;
}

constexpr const char* kLine = "machine=arch1 block=ex1";

TEST(ProcPool, CleanRequestRoundTrips) {
  AVIV_SKIP_UNDER_TSAN();
  WorkerPool pool(quickConfig());
  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(result.crashes, 0);
  EXPECT_NE(result.detail.find("block=ex1"), std::string::npos);
  EXPECT_EQ(pool.aliveWorkers(), 1);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.crashes, 0u);
}

TEST(ProcPool, CrashedWorkerIsRetriedOnceOnAHealthyWorker) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  const std::string crashDir = uniqueTempDir("retry");
  PoolConfig config = quickConfig();
  config.crashDir = crashDir;
  FailPoints::instance().configure("worker-segv");
  WorkerPool pool(config);             // initial worker inherits the segv
  FailPoints::instance().clear();      // ...but its respawn comes up clean

  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(result.crashes, 1);
  EXPECT_NE(result.detail.find("crashed=1"), std::string::npos);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.crashRetried, 1u);
  EXPECT_EQ(stats.crashFailed, 0u);
  EXPECT_EQ(stats.reproBundles, 1u);

  // The crash landed as a bundle recording the exact fail-point site.
  ASSERT_FALSE(result.reproDir.empty());
  const std::string meta = readFile(result.reproDir + "/meta.txt");
  EXPECT_NE(meta.find("kind=crash"), std::string::npos);
  EXPECT_NE(meta.find("failpoints=worker-segv"), std::string::npos);
  EXPECT_NE(meta.find("signal 11"), std::string::npos);
  fs::remove_all(crashDir);
}

TEST(ProcPool, DoubleCrashYieldsTypedErrorNotALostResponse) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  FailPoints::instance().configure("worker-abort");
  WorkerPool pool(config);  // armed worker; respawns stay armed too

  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kError);
  EXPECT_EQ(result.crashes, 2);
  EXPECT_NE(result.detail.find("crashed twice"), std::string::npos);
  EXPECT_NE(result.detail.find("signal 6"), std::string::npos);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_EQ(stats.crashFailed, 1u);
  EXPECT_EQ(stats.crashRetried, 0u);

  // The supervisor itself survived; a clean fleet serves the next request.
  FailPoints::instance().clear();
  const WorkerResult after = pool.execute(kLine, false);
  EXPECT_EQ(after.type, net::FrameType::kOk) << after.detail;
}

TEST(ProcPool, BreakerTripsOnCrashLoopAndRecoversAfterWindow) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  config.crashLoopK = 2;
  config.crashLoopWindowSeconds = 1.0;
  config.breakerBaseline = true;
  FailPoints::instance().configure("worker-abort");
  WorkerPool pool(config);

  // Two crashes of the same line inside the window trip the breaker.
  const WorkerResult first = pool.execute(kLine, false);
  EXPECT_EQ(first.type, net::FrameType::kError);
  EXPECT_EQ(first.crashes, 2);
  EXPECT_EQ(pool.stats().breakerOpens, 1u);

  // Open breaker: served in-process by the baseline engine — no worker is
  // burned, the caller still gets a real compile.
  const WorkerResult served = pool.execute(kLine, false);
  EXPECT_EQ(served.type, net::FrameType::kDegraded) << served.detail;
  EXPECT_TRUE(served.breakerServed);
  EXPECT_NE(served.detail.find("breaker=baseline"), std::string::npos);
  EXPECT_EQ(served.crashes, 0);
  EXPECT_EQ(pool.stats().breakerServed, 1u);
  EXPECT_EQ(pool.stats().crashes, 2u);  // breaker path burned no workers

  // Window expiry half-opens: with the fault gone, workers serve again.
  FailPoints::instance().clear();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const WorkerResult recovered = pool.execute(kLine, false);
  EXPECT_EQ(recovered.type, net::FrameType::kOk) << recovered.detail;
  EXPECT_FALSE(recovered.breakerServed);
}

TEST(ProcPool, BreakerWithoutBaselineAnswersTypedError) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  config.crashLoopK = 2;
  config.breakerBaseline = false;
  FailPoints::instance().configure("worker-abort");
  WorkerPool pool(config);

  (void)pool.execute(kLine, false);  // trips the breaker
  const WorkerResult served = pool.execute(kLine, false);
  EXPECT_EQ(served.type, net::FrameType::kError);
  EXPECT_TRUE(served.breakerServed);
  EXPECT_NE(served.detail.find("breaker"), std::string::npos);
}

TEST(ProcPool, HardDeadlineKillsHungWorkerAndBundleReplaysAsKill) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  const std::string crashDir = uniqueTempDir("hang");
  PoolConfig config = quickConfig();
  config.hardDeadlineMs = 300;
  config.crashDir = crashDir;
  FailPoints::instance().configure("worker-hang");
  WorkerPool pool(config);
  FailPoints::instance().clear();

  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(result.crashes, 1);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.deadlineKills, 1u);
  EXPECT_EQ(stats.crashRetried, 1u);

  // The SIGKILL landed as a kind=kill bundle whose replay hangs past the
  // recorded deadline — the standalone reproduction of "this hung".
  ASSERT_FALSE(result.reproDir.empty());
  const CrashRepro repro = loadCrashRepro(result.reproDir);
  EXPECT_EQ(repro.kind, "kill");
  EXPECT_EQ(repro.failpointSite, "worker-hang");
  EXPECT_EQ(repro.deadlineMs, 300);
  const CrashReplayResult replay = replayCrashRepro(repro);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
  fs::remove_all(crashDir);
}

TEST(ProcPool, TornMidWriteFrameIsACrashNotAWedge) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  FailPoints::instance().configure("worker-torn-write");
  WorkerPool pool(config);
  FailPoints::instance().clear();

  // The worker compiles, writes HALF a response frame, and dies. The
  // supervisor must treat the torn stream as a crash and retry — never
  // deliver garbage, never hang on the poisoned decoder.
  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(pool.stats().crashes, 1u);

  // And the pool is fully live afterwards.
  const WorkerResult after = pool.execute(kLine, false);
  EXPECT_EQ(after.type, net::FrameType::kOk) << after.detail;
  EXPECT_EQ(after.crashes, 0);
}

TEST(ProcPool, OomWorkerIsContainedByRssCap) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  config.env.rssLimitBytes = 256ull << 20;
  FailPoints::instance().configure("worker-oom");
  WorkerPool pool(config);
  FailPoints::instance().clear();

  // The OOM model allocates until RLIMIT_AS refuses, then aborts: one dead
  // worker, one retry, zero effect on the supervisor's own memory.
  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(result.crashes, 1);
}

TEST(ProcPool, OnCrashHookFiresBeforeTheRetry) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  std::atomic<int> sweeps{0};
  PoolConfig config = quickConfig();
  config.onCrash = [&sweeps] { ++sweeps; };
  FailPoints::instance().configure("worker-segv");
  WorkerPool pool(config);
  FailPoints::instance().clear();

  const WorkerResult result = pool.execute(kLine, false);
  EXPECT_EQ(result.type, net::FrameType::kOk) << result.detail;
  EXPECT_EQ(sweeps.load(), 1);
}

TEST(ProcPool, EveryRequestGetsExactlyOneTypedAnswerUnderRandomCrashes) {
  AVIV_SKIP_UNDER_TSAN();
  FailPointGuard guard;
  PoolConfig config = quickConfig();
  config.workers = 2;
  config.crashLoopK = 1000;  // let every crash reach the retry path
  // Probabilistic crash mix, fixed seed: the supervision path sees a
  // deterministic but irregular schedule of segvs and aborts.
  FailPoints::instance().configure("worker-segv:0.3,worker-abort:0.2", 42);
  WorkerPool pool(config);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 5;
  std::atomic<int> answered{0};
  std::atomic<int> badType{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &answered, &badType, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct lines per thread keep the breaker counts per-line honest.
        const std::string line = std::string(kLine) + " timeout=" +
                                 std::to_string(10 + t);
        const WorkerResult result = pool.execute(line, false);
        ++answered;
        if (!net::isResponseType(result.type)) ++badType;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // The contract: one typed answer per request, no exceptions, and the
  // supervisor outlives every worker death.
  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(badType.load(), 0);
  EXPECT_EQ(pool.stats().requests,
            static_cast<uint64_t>(kThreads * kPerThread));

  FailPoints::instance().clear();
  const WorkerResult after = pool.execute(kLine, false);
  EXPECT_EQ(after.type, net::FrameType::kOk) << after.detail;
}

}  // namespace
}  // namespace aviv::proc
