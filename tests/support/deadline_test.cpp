// Deadline (wall-clock budget + cancellation token) and FailPoints
// (fault-injection registry) unit tests — the support pieces of the
// robustness layer.
#include <gtest/gtest.h>

#include <thread>

#include "support/deadline.h"
#include "support/failpoint.h"

namespace aviv {
namespace {

TEST(DeadlineTest, UnarmedNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.armed());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remainingSeconds(),
            std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(deadline.check("stage"));
}

TEST(DeadlineTest, ZeroOrNegativeBudgetDisarms) {
  Deadline deadline;
  deadline.arm(0.0);
  EXPECT_FALSE(deadline.armed());
  deadline.arm(-1.0);
  EXPECT_FALSE(deadline.armed());
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline deadline;
  deadline.arm(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(deadline.armed());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remainingSeconds(), 0.0);
  EXPECT_THROW(deadline.check("covering"), DeadlineExceeded);
}

TEST(DeadlineTest, GenerousBudgetDoesNotExpire) {
  Deadline deadline;
  deadline.arm(3600.0);
  EXPECT_TRUE(deadline.armed());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remainingSeconds(), 3000.0);
  EXPECT_NO_THROW(deadline.check("stage"));
}

TEST(DeadlineTest, CancelExpiresEvenUnarmed) {
  Deadline deadline;
  deadline.cancel();
  EXPECT_TRUE(deadline.cancelled());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remainingSeconds(), 0.0);
  try {
    deadline.check("stage");
    FAIL() << "check must throw after cancel";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
}

TEST(DeadlineTest, RearmResetsCancellation) {
  Deadline deadline;
  deadline.cancel();
  deadline.arm(3600.0);
  EXPECT_FALSE(deadline.cancelled());
  EXPECT_FALSE(deadline.expired());
  deadline.disarm();
  EXPECT_FALSE(deadline.armed());
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, ExceptionDerivesFromError) {
  // Catch sites that report `Error` generically must keep working.
  try {
    throw DeadlineExceeded("budget gone");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "budget gone");
  }
}

// The registry is process-global; every test restores the clean state.
class FailPointsTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().clear(); }
};

TEST_F(FailPointsTest, InactiveByDefault) {
  FailPoints& fp = FailPoints::instance();
  fp.clear();
  EXPECT_FALSE(fp.active());
  EXPECT_FALSE(fp.shouldFail("anything"));
  EXPECT_NO_THROW(fp.maybeThrow("anything"));
}

TEST_F(FailPointsTest, ConfiguredSiteAlwaysFires) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("cache-write");
  EXPECT_TRUE(fp.active());
  EXPECT_TRUE(fp.shouldFail("cache-write"));
  EXPECT_TRUE(fp.shouldFail("cache-write"));
  EXPECT_FALSE(fp.shouldFail("cache-read")) << "other sites stay quiet";
  EXPECT_EQ(fp.fires("cache-write"), 2);
}

TEST_F(FailPointsTest, CountLimitsFires) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("cache-rename:1:2");
  EXPECT_TRUE(fp.shouldFail("cache-rename"));
  EXPECT_TRUE(fp.shouldFail("cache-rename"));
  EXPECT_FALSE(fp.shouldFail("cache-rename")) << "budget of 2 is spent";
  EXPECT_EQ(fp.fires("cache-rename"), 2);
}

TEST_F(FailPointsTest, ZeroProbabilityNeverFires) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("site:0");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.shouldFail("site"));
}

TEST_F(FailPointsTest, ProbabilityDrawsAreDeterministicPerSeed) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("site:0.5", /*seed=*/42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(fp.shouldFail("site"));
  fp.configure("site:0.5", /*seed=*/42);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(fp.shouldFail("site"), first[static_cast<size_t>(i)]) << i;
  // A fair draw at p=0.5 over 64 hits fires at least once either way.
  EXPECT_GT(fp.fires("site"), 0);
}

TEST_F(FailPointsTest, MaybeThrowRaisesTransientError) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("cache-read:1:1");
  EXPECT_THROW(fp.maybeThrow("cache-read"), TransientError);
  EXPECT_NO_THROW(fp.maybeThrow("cache-read"));
}

TEST_F(FailPointsTest, MultipleSitesParseFromOneSpec) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("a:1:1, b:1:2 ,c");
  EXPECT_TRUE(fp.shouldFail("a"));
  EXPECT_FALSE(fp.shouldFail("a"));
  EXPECT_TRUE(fp.shouldFail("b"));
  EXPECT_TRUE(fp.shouldFail("b"));
  EXPECT_FALSE(fp.shouldFail("b"));
  EXPECT_TRUE(fp.shouldFail("c"));
}

TEST_F(FailPointsTest, MalformedEntriesAreSkippedNotFatal) {
  FailPoints& fp = FailPoints::instance();
  // Fault injection must never crash the process it is injected into.
  EXPECT_NO_THROW(fp.configure("good:1:1,:broken:,bad:prob:x,, only-name"));
  EXPECT_TRUE(fp.shouldFail("good"));
  EXPECT_TRUE(fp.shouldFail("only-name"));
}

TEST_F(FailPointsTest, ClearDeactivates) {
  FailPoints& fp = FailPoints::instance();
  fp.configure("site");
  EXPECT_TRUE(fp.active());
  fp.clear();
  EXPECT_FALSE(fp.active());
  EXPECT_FALSE(fp.shouldFail("site"));
}

}  // namespace
}  // namespace aviv
