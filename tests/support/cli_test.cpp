#include "support/cli.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace aviv {
namespace {

CliFlags makeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CliFlags(static_cast<int>(args.size()), args.data());
}

TEST(CliFlags, ParsesEqualsForm) {
  CliFlags flags = makeFlags({"--machine=arch1", "--beam=16"});
  EXPECT_EQ(flags.getString("machine", ""), "arch1");
  EXPECT_EQ(flags.getInt("beam", 0), 16);
  flags.finish();
}

TEST(CliFlags, ParsesSpaceForm) {
  CliFlags flags = makeFlags({"--machine", "arch2"});
  EXPECT_EQ(flags.getString("machine", ""), "arch2");
  flags.finish();
}

TEST(CliFlags, BareBooleanFlag) {
  CliFlags flags = makeFlags({"--verbose"});
  EXPECT_TRUE(flags.getBool("verbose", false));
  flags.finish();
}

TEST(CliFlags, DefaultsWhenAbsent) {
  CliFlags flags = makeFlags({});
  EXPECT_EQ(flags.getString("machine", "arch1"), "arch1");
  EXPECT_EQ(flags.getInt("beam", 8), 8);
  EXPECT_FALSE(flags.getBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.getDouble("limit", 1.5), 1.5);
  flags.finish();
}

TEST(CliFlags, PositionalArguments) {
  CliFlags flags = makeFlags({"ex1", "--x=1", "ex2"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"ex1", "ex2"}));
  (void)flags.getInt("x", 0);
  flags.finish();
}

TEST(CliFlags, UnknownFlagRejectedAtFinish) {
  CliFlags flags = makeFlags({"--typo=3"});
  EXPECT_THROW(flags.finish(), Error);
}

TEST(CliFlags, MalformedIntThrows) {
  CliFlags flags = makeFlags({"--beam=abc"});
  EXPECT_THROW((void)flags.getInt("beam", 0), Error);
}

TEST(CliFlags, BoolSpellings) {
  CliFlags flags =
      makeFlags({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(flags.getBool("a", false));
  EXPECT_FALSE(flags.getBool("b", true));
  EXPECT_TRUE(flags.getBool("c", false));
  EXPECT_FALSE(flags.getBool("d", true));
  flags.finish();
}

}  // namespace
}  // namespace aviv
