#include "support/bitset.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace aviv {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset bits(130);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(DynBitset, ConstructAllSetTrimsTail) {
  DynBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
  bits.resetAll();
  EXPECT_EQ(bits.count(), 0u);
  bits.setAll();
  EXPECT_EQ(bits.count(), 70u);
}

TEST(DynBitset, ResizeGrowWithValue) {
  DynBitset bits(10, false);
  bits.set(3);
  bits.resize(100, true);
  EXPECT_TRUE(bits.test(3));
  EXPECT_FALSE(bits.test(4));
  for (size_t i = 10; i < 100; ++i) EXPECT_TRUE(bits.test(i)) << i;
  EXPECT_EQ(bits.count(), 91u);
}

TEST(DynBitset, SetAlgebra) {
  DynBitset a(80);
  DynBitset b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(3);

  DynBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);

  DynBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));

  DynBitset d = a;
  d.andNot(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));

  DynBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(3));
}

TEST(DynBitset, SubsetAndIntersect) {
  DynBitset small(200);
  DynBitset big(200);
  small.set(5);
  small.set(150);
  big.set(5);
  big.set(150);
  big.set(199);
  EXPECT_TRUE(small.isSubsetOf(big));
  EXPECT_FALSE(big.isSubsetOf(small));
  EXPECT_TRUE(small.intersects(big));
  EXPECT_EQ(small.intersectCount(big), 2u);

  DynBitset disjoint(200);
  disjoint.set(7);
  EXPECT_FALSE(small.intersects(disjoint));
}

TEST(DynBitset, FindFirstAndIteration) {
  DynBitset bits(300);
  bits.set(65);
  bits.set(128);
  bits.set(299);
  EXPECT_EQ(bits.findFirst(), 65u);
  EXPECT_EQ(bits.findFirst(66), 128u);
  EXPECT_EQ(bits.findFirst(129), 299u);
  EXPECT_EQ(bits.findFirst(300), 300u);

  EXPECT_EQ(bits.toIndices(), (std::vector<size_t>{65, 128, 299}));
}

TEST(DynBitset, LexLessGivesTotalOrder) {
  DynBitset a(70);
  DynBitset b(70);
  a.set(0);
  b.set(1);
  EXPECT_TRUE(a.lexLess(b));
  EXPECT_FALSE(b.lexLess(a));
  EXPECT_FALSE(a.lexLess(a));
}

TEST(DynBitset, RandomizedAgainstReferenceSets) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.below(250);
    DynBitset bits(n);
    std::vector<bool> ref(n, false);
    for (int step = 0; step < 100; ++step) {
      const size_t i = rng.below(n);
      if (rng.chance(0.5)) {
        bits.set(i);
        ref[i] = true;
      } else {
        bits.reset(i);
        ref[i] = false;
      }
    }
    size_t refCount = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits.test(i), ref[i]);
      refCount += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(bits.count(), refCount);
  }
}

// Word-boundary edge cases: sizes straddling the 64-bit word seams are
// where tail-masking bugs live, and the flattened clique loops (raw-word
// bits:: helpers, assignWords round-trips) lean on these invariants hard.
class DynBitsetBoundary : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Seams, DynBitsetBoundary,
                         ::testing::Values(63u, 64u, 65u, 128u, 129u));

TEST_P(DynBitsetBoundary, AllSetPopcountAndTailStaysTrimmed) {
  const size_t n = GetParam();
  DynBitset bits(n, true);
  EXPECT_EQ(bits.count(), n);
  // The tail bits past n in the last word must be zero, or lexLess /
  // operator== / assignWords would see phantom bits.
  const uint64_t last = bits.wordData()[bits.wordCount() - 1];
  if (n % 64 != 0)
    EXPECT_EQ(last & ~((uint64_t{1} << (n % 64)) - 1), 0u);
  bits.setAll();
  EXPECT_EQ(bits.count(), n);
}

TEST_P(DynBitsetBoundary, EdgeBitsSetResetFind) {
  const size_t n = GetParam();
  DynBitset bits(n);
  bits.set(0);
  bits.set(n - 1);
  if (n > 64) bits.set(63), bits.set(64);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(n - 1));
  EXPECT_EQ(bits.findFirst(), 0u);
  EXPECT_EQ(bits.findFirst(n - 1), n - 1);
  EXPECT_EQ(bits.findFirst(n), n);
  bits.reset(n - 1);
  EXPECT_FALSE(bits.test(n - 1));
  std::vector<size_t> seen;
  bits.forEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits.toIndices());
}

TEST_P(DynBitsetBoundary, ResizeAcrossTheSeam) {
  const size_t n = GetParam();
  DynBitset bits(n);
  bits.set(n - 1);
  bits.resize(n + 1, true);  // one past: new bit true, old bits kept
  EXPECT_TRUE(bits.test(n - 1));
  EXPECT_TRUE(bits.test(n));
  EXPECT_EQ(bits.count(), 2u);
  bits.resize(n - 1);  // shrink back across the seam: tail must re-trim
  EXPECT_EQ(bits.size(), n - 1);
  EXPECT_EQ(bits.count(), 0u);
  bits.setAll();
  EXPECT_EQ(bits.count(), n - 1);
}

TEST_P(DynBitsetBoundary, AlgebraSubsetAndIntersectCount) {
  const size_t n = GetParam();
  DynBitset odd(n);
  DynBitset low(n);
  for (size_t i = 1; i < n; i += 2) odd.set(i);
  for (size_t i = 0; i < n / 2; ++i) low.set(i);
  DynBitset d = odd;
  d.andNot(low);
  for (size_t i = 0; i < n; ++i)
    EXPECT_EQ(d.test(i), i % 2 == 1 && i >= n / 2) << i;
  EXPECT_EQ(odd.intersectCount(low), low.count() / 2);
  EXPECT_TRUE(d.isSubsetOf(odd));
  EXPECT_FALSE(odd.isSubsetOf(d));
  EXPECT_EQ(d.count() + low.count() / 2, odd.count());
}

TEST_P(DynBitsetBoundary, AssignWordsRoundTripsAndClearAndResize) {
  const size_t n = GetParam();
  DynBitset src(n);
  src.set(0);
  src.set(n - 1);
  DynBitset dst;
  dst.assignWords(n, src.wordData());
  EXPECT_EQ(dst, src);
  EXPECT_EQ(dst.count(), 2u);
  dst.clearAndResize(n);
  EXPECT_EQ(dst.size(), n);
  EXPECT_TRUE(dst.none());
}

TEST_P(DynBitsetBoundary, UncheckedAccessorsAgreeWithChecked) {
  const size_t n = GetParam();
  DynBitset bits(n);
  bits.setUnchecked(n - 1);
  EXPECT_TRUE(bits.testUnchecked(n - 1));
  EXPECT_TRUE(bits.testChecked(n - 1));
  bits.resetUnchecked(n - 1);
  EXPECT_FALSE(bits.test(n - 1));
  bits.setChecked(0);
  EXPECT_TRUE(bits.testUnchecked(0));
}

TEST_P(DynBitsetBoundary, RawWordHelpersMatchDynBitset) {
  const size_t n = GetParam();
  DynBitset a(n);
  DynBitset b(n);
  for (size_t i = 0; i < n; i += 3) a.set(i);
  for (size_t i = 0; i < n; i += 2) b.set(i);
  const size_t words = a.wordCount();
  std::vector<uint64_t> buf(words);
  bits::andInto(buf.data(), a.wordData(), b.wordData(), words);
  DynBitset both = a;
  both &= b;
  DynBitset fromRaw;
  fromRaw.assignWords(n, buf.data());
  EXPECT_EQ(fromRaw, both);
  bits::andNotInto(buf.data(), a.wordData(), b.wordData(), words);
  DynBitset diff = a;
  diff.andNot(b);
  fromRaw.assignWords(n, buf.data());
  EXPECT_EQ(fromRaw, diff);
  // findFirst over the raw words agrees with the DynBitset walk, including
  // the limit sentinel at exactly n.
  size_t expect = both.findFirst();
  size_t got = bits::findFirst(both.wordData(), 0, n);
  while (expect != n || got != n) {
    EXPECT_EQ(got, expect);
    expect = both.findFirst(expect + 1);
    got = bits::findFirst(both.wordData(), got + 1, n);
  }
  EXPECT_EQ(bits::findFirst(both.wordData(), n, n), n);
}

}  // namespace
}  // namespace aviv
