#include "support/bitset.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace aviv {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset bits(130);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(DynBitset, ConstructAllSetTrimsTail) {
  DynBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
  bits.resetAll();
  EXPECT_EQ(bits.count(), 0u);
  bits.setAll();
  EXPECT_EQ(bits.count(), 70u);
}

TEST(DynBitset, ResizeGrowWithValue) {
  DynBitset bits(10, false);
  bits.set(3);
  bits.resize(100, true);
  EXPECT_TRUE(bits.test(3));
  EXPECT_FALSE(bits.test(4));
  for (size_t i = 10; i < 100; ++i) EXPECT_TRUE(bits.test(i)) << i;
  EXPECT_EQ(bits.count(), 91u);
}

TEST(DynBitset, SetAlgebra) {
  DynBitset a(80);
  DynBitset b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(3);

  DynBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);

  DynBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));

  DynBitset d = a;
  d.andNot(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));

  DynBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(3));
}

TEST(DynBitset, SubsetAndIntersect) {
  DynBitset small(200);
  DynBitset big(200);
  small.set(5);
  small.set(150);
  big.set(5);
  big.set(150);
  big.set(199);
  EXPECT_TRUE(small.isSubsetOf(big));
  EXPECT_FALSE(big.isSubsetOf(small));
  EXPECT_TRUE(small.intersects(big));
  EXPECT_EQ(small.intersectCount(big), 2u);

  DynBitset disjoint(200);
  disjoint.set(7);
  EXPECT_FALSE(small.intersects(disjoint));
}

TEST(DynBitset, FindFirstAndIteration) {
  DynBitset bits(300);
  bits.set(65);
  bits.set(128);
  bits.set(299);
  EXPECT_EQ(bits.findFirst(), 65u);
  EXPECT_EQ(bits.findFirst(66), 128u);
  EXPECT_EQ(bits.findFirst(129), 299u);
  EXPECT_EQ(bits.findFirst(300), 300u);

  EXPECT_EQ(bits.toIndices(), (std::vector<size_t>{65, 128, 299}));
}

TEST(DynBitset, LexLessGivesTotalOrder) {
  DynBitset a(70);
  DynBitset b(70);
  a.set(0);
  b.set(1);
  EXPECT_TRUE(a.lexLess(b));
  EXPECT_FALSE(b.lexLess(a));
  EXPECT_FALSE(a.lexLess(a));
}

TEST(DynBitset, RandomizedAgainstReferenceSets) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.below(250);
    DynBitset bits(n);
    std::vector<bool> ref(n, false);
    for (int step = 0; step < 100; ++step) {
      const size_t i = rng.below(n);
      if (rng.chance(0.5)) {
        bits.set(i);
        ref[i] = true;
      } else {
        bits.reset(i);
        ref[i] = false;
      }
    }
    size_t refCount = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits.test(i), ref[i]);
      refCount += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(bits.count(), refCount);
  }
}

}  // namespace
}  // namespace aviv
