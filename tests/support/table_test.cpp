#include "support/table.h"

#include <gtest/gtest.h>

namespace aviv {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"Name", "Count"});
  table.addRow({"a", "1"});
  table.addRow({"longer", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("| Name   | Count |"), std::string::npos) << out;
  EXPECT_NE(out.find("| a      | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos) << out;
}

TEST(TextTable, SeparatorProducesRule) {
  TextTable table({"X"});
  table.addRow({"a"});
  table.addSeparator();
  table.addRow({"b"});
  const std::string out = table.str();
  // header rule + top + bottom + mid-separator = 4 rules
  size_t rules = 0;
  for (size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos)
    ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, WideCellStretchesColumn) {
  TextTable table({"H"});
  table.addRow({"wide-cell-value"});
  EXPECT_NE(table.str().find("| wide-cell-value |"), std::string::npos);
}

}  // namespace
}  // namespace aviv
