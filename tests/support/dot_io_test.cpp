#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/dot.h"
#include "support/error.h"
#include "support/io.h"

namespace aviv {
namespace {

TEST(DotWriter, EmitsValidDigraph) {
  DotWriter dw("g");
  dw.addRaw("rankdir=BT;");
  dw.addNode("a", "shape=box, label=\"A\"");
  dw.addNode("b", "shape=ellipse, label=\"B\"");
  dw.addEdge("a", "b");
  dw.addEdge("b", "a", "style=dashed");
  const std::string out = dw.str();
  EXPECT_NE(out.find("digraph \"g\" {"), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\";"), std::string::npos);
  EXPECT_NE(out.find("\"b\" -> \"a\" [style=dashed];"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(DotWriter, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(DotWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  DotWriter dw("quo\"te");
  EXPECT_NE(dw.str().find("digraph \"quo\\\"te\""), std::string::npos);
}

TEST(Io, ReadWriteRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aviv_io_test.txt").string();
  writeFile(path, "hello\nworld");
  EXPECT_EQ(readFile(path), "hello\nworld");
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)readFile("/nonexistent/definitely/missing"), Error);
}

TEST(Io, DataDirsResolveShippedFiles) {
  // The compiled-in defaults (or env overrides in CI) must point at real
  // directories containing the shipped data.
  EXPECT_NO_THROW((void)readFile(machinePath("arch1")));
  EXPECT_NO_THROW((void)readFile(blockPath("ex1")));
}

TEST(ErrorType, CarriesLocation) {
  const Error plain("message");
  EXPECT_FALSE(plain.loc().valid());
  const Error located(SourceLoc{3, 7}, "bad token");
  EXPECT_TRUE(located.loc().valid());
  EXPECT_EQ(located.loc().line, 3u);
  EXPECT_EQ(std::string(located.what()), "3:7: bad token");
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
  EXPECT_EQ((SourceLoc{12, 1}).str(), "12:1");
}

}  // namespace
}  // namespace aviv
