#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace aviv {
namespace {

TEST(Arena, AllocationsAreAlignedAndRounded) {
  Arena arena;
  void* a = arena.allocate(1);
  void* b = arena.allocate(17);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % Arena::kQuantum, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % Arena::kQuantum, 0u);
  const ArenaStats& s = arena.stats();
  EXPECT_EQ(s.allocCalls, 2u);
  EXPECT_EQ(s.bytesRequested, 18u);       // raw bytes, pre-rounding
  EXPECT_EQ(s.inUse, 16u + 32u);          // rounded to the 16-byte quantum
  EXPECT_EQ(s.highWater, s.inUse);
}

TEST(Arena, AddressesStayStableAcrossGrowth) {
  Arena arena(/*firstChunkBytes=*/64);
  std::vector<int*> ptrs;
  for (int i = 0; i < 200; ++i) {
    int* p = arena.alloc<int>(4);
    p[0] = i;
    ptrs.push_back(p);
  }
  // Growth allocated new chunks; earlier pointers must still read back.
  for (int i = 0; i < 200; ++i) EXPECT_EQ(ptrs[i][0], i);
  EXPECT_GT(arena.stats().chunkBytes, 64u);
}

TEST(Arena, RewindReleasesAndChunksAreReused) {
  Arena arena(/*firstChunkBytes=*/64);
  const Arena::Mark m = arena.mark();
  (void)arena.allocate(1000);
  const uint64_t chunksAfterFirst = arena.stats().chunkBytes;
  arena.rewind(m);
  EXPECT_EQ(arena.stats().inUse, 0u);
  (void)arena.allocate(1000);
  // The second pass runs inside retained chunks: no new heap growth.
  EXPECT_EQ(arena.stats().chunkBytes, chunksAfterFirst);
}

TEST(Arena, ScopeRewindsOnExit) {
  Arena arena;
  (void)arena.allocate(32);
  const uint64_t outside = arena.stats().inUse;
  {
    const ArenaScope scope(arena);
    (void)arena.allocate(512);
    EXPECT_GT(arena.stats().inUse, outside);
  }
  EXPECT_EQ(arena.stats().inUse, outside);
}

TEST(Arena, StatsDeltasIgnoreChunkGeometry) {
  // The jobs-invariance contract: identical allocation sequences produce
  // identical (allocCalls, bytesRequested, inUse) regardless of how the
  // chunks happened to grow — chunk-boundary waste is never charged.
  Arena small(/*firstChunkBytes=*/32);
  Arena large(/*firstChunkBytes=*/1 << 16);
  for (int i = 0; i < 50; ++i) {
    (void)small.allocate(40);
    (void)large.allocate(40);
  }
  EXPECT_EQ(small.stats().allocCalls, large.stats().allocCalls);
  EXPECT_EQ(small.stats().bytesRequested, large.stats().bytesRequested);
  EXPECT_EQ(small.stats().inUse, large.stats().inUse);
  EXPECT_EQ(small.stats().highWater, large.stats().highWater);
  EXPECT_NE(small.stats().chunkBytes, large.stats().chunkBytes);
}

TEST(Arena, ResetHighWaterMeasuresScopedPeaks) {
  Arena arena;
  (void)arena.allocate(1024);
  {
    const ArenaScope scope(arena);
    (void)arena.allocate(4096);
  }
  arena.resetHighWater();
  EXPECT_EQ(arena.stats().highWater, arena.stats().inUse);
  const uint64_t before = arena.stats().inUse;
  {
    const ArenaScope scope(arena);
    (void)arena.allocate(160);
  }
  // The per-candidate peak is the scoped growth, not the historic maximum.
  EXPECT_EQ(arena.stats().highWater - before, 160u);
}

TEST(Arena, AllocSpanFillsAndAllocCopyCopies) {
  Arena arena;
  const Span<int> filled = arena.allocSpan<int>(5, 7);
  ASSERT_EQ(filled.size(), 5u);
  for (int v : filled) EXPECT_EQ(v, 7);
  const int src[] = {1, 2, 3};
  const Span<int> copied = arena.allocCopy(src, 3);
  ASSERT_EQ(copied.size(), 3u);
  EXPECT_EQ(copied[0], 1);
  EXPECT_EQ(copied[2], 3);
  // Copies are independent storage.
  copied[0] = 9;
  EXPECT_EQ(src[0], 1);
}

TEST(Arena, MoveTransfersChunksAndKeepsAddresses) {
  Arena arena;
  int* p = arena.alloc<int>(1);
  *p = 41;
  Arena moved = std::move(arena);
  EXPECT_EQ(*p, 41);
  *moved.alloc<int>(1) = 42;
  EXPECT_EQ(*p, 41);
}

TEST(FlatPool, AppendVariantsAndSpanStability) {
  FlatPool<uint32_t> pool;
  const std::vector<uint32_t> vec = {4, 5, 6};
  const Span<uint32_t> a = pool.append({1u, 2u, 3u});
  const Span<uint32_t> b = pool.append(vec);
  const Span<uint32_t> c = pool.appendFill(4, 9u);
  EXPECT_EQ(pool.size(), 10u);
  // Force growth well past the first chunk; earlier spans must survive.
  for (int i = 0; i < 1000; ++i) (void)pool.appendFill(16, 0u);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[2], 3u);
  EXPECT_EQ(b[1], 5u);
  for (uint32_t v : c) EXPECT_EQ(v, 9u);
}

TEST(FlatPool, EmptyAppendYieldsEmptySpan) {
  FlatPool<uint32_t> pool;
  const Span<uint32_t> empty = pool.append(nullptr, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(pool.size(), 0u);
}

TEST(Span, ConvertsToConstAndIndexes) {
  int raw[] = {10, 20, 30};
  const Span<int> s(raw, 3);
  const Span<const int> cs = s;
  EXPECT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.front(), 10);
  EXPECT_EQ(cs.back(), 30);
  s[1] = 25;
  EXPECT_EQ(cs[1], 25);
}

}  // namespace
}  // namespace aviv
