// Phase-telemetry tree: counters, child ordering, merge semantics, and the
// JSON round-trip that --stats-json relies on.
#include <gtest/gtest.h>

#include "support/error.h"
#include "support/telemetry.h"

namespace aviv {
namespace {

TelemetryNode sampleTree() {
  TelemetryNode root("codegen");
  root.setCounter("jobs", 4);
  root.addSeconds(0.125);
  TelemetryNode& block = root.child("block:fig2");
  block.child("splitnode").setCounter("sndNodes", 42);
  TelemetryNode& cover = block.child("cover");
  cover.setCounter("cliquesGenerated", 1234);
  cover.setCounter("spillsInserted", 2);
  cover.addSeconds(3.5e-3);
  block.child("regalloc").setCounter("valuesColored", 17);
  return root;
}

TEST(Telemetry, CountersAccumulateAndRead) {
  TelemetryNode node("phase");
  EXPECT_FALSE(node.hasCounter("x"));
  EXPECT_EQ(node.counter("x"), 0);
  node.addCounter("x", 3);
  node.addCounter("x", 4);
  node.setCounter("y", -5);
  EXPECT_TRUE(node.hasCounter("x"));
  EXPECT_EQ(node.counter("x"), 7);
  EXPECT_EQ(node.counter("y"), -5);
}

TEST(Telemetry, ChildIsFindOrCreateWithStableOrder) {
  TelemetryNode root("r");
  TelemetryNode& b = root.child("beta");
  TelemetryNode& a = root.child("alpha");
  EXPECT_EQ(&root.child("beta"), &b);  // found, not duplicated
  ASSERT_EQ(root.children().size(), 2u);
  // Insertion order, not alphabetical: phase order is pipeline order.
  EXPECT_EQ(root.children()[0]->name(), "beta");
  EXPECT_EQ(root.children()[1]->name(), "alpha");
  EXPECT_EQ(root.findChild("alpha"), &a);
  EXPECT_EQ(root.findChild("gamma"), nullptr);
}

TEST(Telemetry, JsonRoundTripPreservesEverything) {
  const TelemetryNode root = sampleTree();
  const TelemetryNode parsed = TelemetryNode::fromJson(root.toJson());
  EXPECT_TRUE(parsed.sameShapeAs(root));
  // sameShapeAs skips seconds (wall-clock noise in live trees), but the
  // serialized form must preserve them exactly — %.17g round-trips doubles.
  EXPECT_DOUBLE_EQ(parsed.seconds(), 0.125);
  const TelemetryNode* cover = parsed.findChild("block:fig2")->findChild("cover");
  ASSERT_NE(cover, nullptr);
  EXPECT_DOUBLE_EQ(cover->seconds(), 3.5e-3);
  EXPECT_EQ(cover->counter("cliquesGenerated"), 1234);
  // A second round trip is byte-identical: serialization is canonical.
  EXPECT_EQ(TelemetryNode::fromJson(parsed.toJson()).toJson(), parsed.toJson());
}

TEST(Telemetry, JsonEscapesSpecialCharacters) {
  TelemetryNode root("block:\"weird\"\n\\name");
  const TelemetryNode parsed = TelemetryNode::fromJson(root.toJson());
  EXPECT_EQ(parsed.name(), root.name());
}

TEST(Telemetry, JsonEscapesHostileControlCharacters) {
  // Block names come from user input (IR files), so the serializer must
  // survive every control byte: \r has a short escape, the rest go \u00XX.
  std::string hostile = "blk:\r\n\t";
  hostile += '\x01';
  hostile += '\x1f';
  hostile += "\xc3\xa9";  // UTF-8 passes through raw
  TelemetryNode root(hostile);
  root.setCounter("k\rv", 7);
  const std::string json = root.toJson();
  for (const char c : json)
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte in serialized JSON";
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  const TelemetryNode parsed = TelemetryNode::fromJson(json);
  EXPECT_EQ(parsed.name(), hostile);
  EXPECT_EQ(parsed.counter("k\rv"), 7);
  // Canonical: a second round trip is byte-identical.
  EXPECT_EQ(parsed.toJson(), json);
}

TEST(Telemetry, FromJsonDecodesUnicodeEscapes) {
  const TelemetryNode parsed = TelemetryNode::fromJson(
      "{\"name\": \"a\\u0007b\\u00FFc\", \"seconds\": 0, "
      "\"counters\": {}, \"children\": []}");
  std::string expected = "a";
  expected += '\x07';
  expected += 'b';
  expected += '\xff';
  expected += 'c';
  EXPECT_EQ(parsed.name(), expected);
  // Only \u00XX is emitted, so anything beyond latin-1 is rejected rather
  // than silently mangled, as are truncated or non-hex escapes.
  EXPECT_THROW(
      (void)TelemetryNode::fromJson("{\"name\": \"\\u0100\"}"), Error);
  EXPECT_THROW(
      (void)TelemetryNode::fromJson("{\"name\": \"\\u00g1\"}"), Error);
  EXPECT_THROW((void)TelemetryNode::fromJson("{\"name\": \"\\u00"), Error);
}

TEST(Telemetry, FromJsonRejectsMalformedInput) {
  EXPECT_THROW((void)TelemetryNode::fromJson("{"), Error);
  EXPECT_THROW((void)TelemetryNode::fromJson("[]"), Error);
  EXPECT_THROW((void)TelemetryNode::fromJson(R"({"name": "x"} trailing)"),
               Error);
}

TEST(Telemetry, MergeAddsCountersSecondsAndChildrenByName) {
  TelemetryNode a = sampleTree();
  TelemetryNode b = sampleTree();
  b.child("block:dct4").setCounter("sndNodes", 9);
  a.merge(b);
  EXPECT_EQ(a.counter("jobs"), 8);  // counters add
  EXPECT_DOUBLE_EQ(a.seconds(), 0.25);
  EXPECT_EQ(a.findChild("block:fig2")->findChild("cover")->counter(
                "cliquesGenerated"),
            2468);
  ASSERT_NE(a.findChild("block:dct4"), nullptr);  // new child adopted
  EXPECT_EQ(a.findChild("block:dct4")->counter("sndNodes"), 9);
}

TEST(Telemetry, SameShapeDetectsCounterAndTopologyDrift) {
  const TelemetryNode root = sampleTree();
  TelemetryNode differentCounter = sampleTree();
  differentCounter.child("block:fig2").child("cover").setCounter(
      "spillsInserted", 3);
  EXPECT_FALSE(root.sameShapeAs(differentCounter));
  TelemetryNode extraChild = sampleTree();
  extraChild.child("block:extra");
  EXPECT_FALSE(root.sameShapeAs(extraChild));
  TelemetryNode differentSeconds = sampleTree();
  differentSeconds.addSeconds(123.0);
  EXPECT_TRUE(root.sameShapeAs(differentSeconds));
}

TEST(Telemetry, PhaseScopeCreatesChildAndAccumulatesTime) {
  TelemetryNode root("r");
  {
    PhaseScope ph(root, "work");
    ph.node().setCounter("items", 3);
  }
  {
    PhaseScope ph(root, "work");  // same phase again: time accumulates
    ph.node().addCounter("items", 2);
  }
  ASSERT_EQ(root.children().size(), 1u);
  EXPECT_EQ(root.child("work").counter("items"), 5);
  EXPECT_GE(root.child("work").seconds(), 0.0);
}

}  // namespace
}  // namespace aviv
