#include "support/lexer.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace aviv {
namespace {

TEST(Lexer, TokenizesIdentifiersNumbersPuncts) {
  Lexer lex("foo 42 + bar_2;");
  EXPECT_TRUE(lex.peek().isIdent("foo"));
  lex.next();
  Token num = lex.next();
  EXPECT_TRUE(num.is(Token::Kind::kNumber));
  EXPECT_EQ(num.number, 42);
  EXPECT_TRUE(lex.next().isPunct("+"));
  EXPECT_TRUE(lex.next().isIdent("bar_2"));
  EXPECT_TRUE(lex.next().isPunct(";"));
  EXPECT_TRUE(lex.atEnd());
}

TEST(Lexer, HexNumbers) {
  Lexer lex("0x1F 0xff");
  EXPECT_EQ(lex.next().number, 31);
  EXPECT_EQ(lex.next().number, 255);
}

TEST(Lexer, MultiCharPunctGreedyMatch) {
  Lexer lex("a <-> b -> c < d", {"->", "<->", "<<"});
  lex.next();
  EXPECT_TRUE(lex.next().isPunct("<->"));
  lex.next();
  EXPECT_TRUE(lex.next().isPunct("->"));
  lex.next();
  EXPECT_TRUE(lex.next().isPunct("<"));
}

TEST(Lexer, ShiftVsComparison) {
  Lexer lex("a << b <= c", {"<<", "<="});
  lex.next();
  EXPECT_TRUE(lex.next().isPunct("<<"));
  lex.next();
  EXPECT_TRUE(lex.next().isPunct("<="));
}

TEST(Lexer, SkipsAllCommentForms) {
  Lexer lex("a # line\nb // other\nc /* block\nspans */ d");
  EXPECT_TRUE(lex.next().isIdent("a"));
  EXPECT_TRUE(lex.next().isIdent("b"));
  EXPECT_TRUE(lex.next().isIdent("c"));
  EXPECT_TRUE(lex.next().isIdent("d"));
  EXPECT_TRUE(lex.atEnd());
}

TEST(Lexer, StringsWithEscapes) {
  Lexer lex(R"("hello" "with \" quote")");
  Token a = lex.next();
  EXPECT_TRUE(a.is(Token::Kind::kString));
  EXPECT_EQ(a.text, "hello");
  EXPECT_EQ(lex.next().text, "with \" quote");
}

TEST(Lexer, TracksLineAndColumn) {
  Lexer lex("a\n  b");
  EXPECT_EQ(lex.next().loc.line, 1u);
  Token b = lex.next();
  EXPECT_EQ(b.loc.line, 2u);
  EXPECT_EQ(b.loc.column, 3u);
}

TEST(Lexer, UnterminatedStringThrows) {
  Lexer lex("\"oops");
  EXPECT_THROW(lex.next(), Error);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  Lexer lex("/* oops");
  EXPECT_THROW(lex.next(), Error);
}

TEST(Lexer, PeekAheadDoesNotConsume) {
  Lexer lex("x y z");
  EXPECT_TRUE(lex.peek(2).isIdent("z"));
  EXPECT_TRUE(lex.peek(0).isIdent("x"));
  EXPECT_TRUE(lex.next().isIdent("x"));
  EXPECT_TRUE(lex.next().isIdent("y"));
}

TEST(Lexer, ExpectHelpersThrowWithLocation) {
  Lexer lex("foo bar");
  lex.next();
  try {
    lex.expectNumber();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1:5"), std::string::npos)
        << e.what();
  }
}

TEST(Lexer, DollarIdentifiers) {
  Lexer lex("y$i a$i0");
  EXPECT_EQ(lex.next().text, "y$i");
  EXPECT_EQ(lex.next().text, "a$i0");
}

}  // namespace
}  // namespace aviv
