#include "support/strings.h"

#include <gtest/gtest.h>

namespace aviv {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("ar", "bar"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(toLower("MiXeD"), "mixed");
  EXPECT_EQ(toUpper("MiXeD"), "MIXED");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Strings, Plural) {
  EXPECT_EQ(plural(1, "node"), "1 node");
  EXPECT_EQ(plural(2, "node"), "2 nodes");
  EXPECT_EQ(plural(0, "spill"), "0 spills");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
}

}  // namespace
}  // namespace aviv
