// Work-stealing thread pool: full index coverage, serial-equivalent error
// reporting (lowest failing index wins), and inline nested execution.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace aviv {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, PerWorkerAccumulatorsNeedNoLocking) {
  ThreadPool pool(3);
  constexpr size_t kN = 500;
  std::vector<long long> partial(static_cast<size_t>(pool.parallelism()), 0);
  pool.parallelFor(kN, [&](size_t i, int worker) {
    partial[static_cast<size_t>(worker)] += static_cast<long long>(i);
  });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.parallelFor(5, [&](size_t i, int worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, LowestFailingIndexIsRethrown) {
  ThreadPool pool(4);
  // Many failures race; the serial-equivalent one (lowest index) must win.
  for (int trial = 0; trial < 20; ++trial) {
    try {
      pool.parallelFor(64, [&](size_t i, int) {
        if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "1");
    }
  }
}

TEST(ThreadPool, AllIndicesStillRunWhenOneThrows) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallelFor(100,
                                [&](size_t i, int) {
                                  ran.fetch_add(1);
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // parallelFor drains the whole index space before rethrowing so partial
  // per-worker results stay well-defined.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::atomic<int> innerRuns{0};
  pool.parallelFor(kOuter, [&](size_t, int) {
    const auto worker = std::this_thread::get_id();
    pool.parallelFor(kInner, [&](size_t, int innerWorker) {
      // Nested regions must not hop threads (they run inline serially).
      EXPECT_EQ(std::this_thread::get_id(), worker);
      EXPECT_EQ(innerWorker, 0);
      innerRuns.fetch_add(1);
    });
  });
  EXPECT_EQ(innerRuns.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  for (size_t n : {0u, 1u, 2u, 7u, 64u}) {
    std::atomic<size_t> ran{0};
    pool.parallelFor(n, [&](size_t, int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), n);
  }
}

}  // namespace
}  // namespace aviv
