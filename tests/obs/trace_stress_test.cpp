// Concurrency stress for the observability layer, meant to run under
// ThreadSanitizer (the repo's -DAVIV_SANITIZE=thread build): ThreadPool
// workers hammer their per-thread rings and sharded metrics while a
// drainer thread concurrently exports, so any emit/drain race or ring
// sharing bug shows up as a TSan report (and usually as a torn count).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace aviv {
namespace {

TEST(TraceStress, ConcurrentEmissionAndDrain) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.enable(1 << 10);  // small rings: force wrap-around under load
  tracer.clear();
  metrics::Registry& registry = metrics::Registry::instance();
  registry.enable();
  registry.reset();

  std::atomic<bool> done{false};
  std::atomic<int64_t> drains{0};
  // The drainer races exportJson/retained/overwritten against live
  // emission for the whole run — each drain locks rings one at a time,
  // never stopping the world.
  std::thread drainer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string json = tracer.exportJson();
      EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
      (void)tracer.retained();
      (void)tracer.overwritten();
      (void)registry.toJson();
      drains.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr size_t kTasks = 20000;
  ThreadPool pool(8);
  pool.parallelFor(kTasks, [&](size_t index, int worker) {
    trace::Span span("stress", "task");
    span.arg("index", static_cast<int64_t>(index));
    trace::instant("stress", "tick:", std::to_string(worker));
    trace::counter("stress", "series", "v", static_cast<int64_t>(index));
    metrics::Registry::instance().counter("stress.tasks").add(1);
    metrics::Registry::instance()
        .histogram("stress.value.us")
        .record(static_cast<int64_t>(index % 4096));
  });

  done.store(true, std::memory_order_relaxed);
  drainer.join();

  // Emission is never lost, only overwritten: retained + overwritten
  // accounts for all 3 events per task once the workers quiesce.
  EXPECT_EQ(tracer.retained() + static_cast<size_t>(tracer.overwritten()),
            3 * kTasks);
  EXPECT_EQ(registry.counter("stress.tasks").value(),
            static_cast<int64_t>(kTasks));
  EXPECT_EQ(registry.histogram("stress.value.us").snapshot().count,
            static_cast<int64_t>(kTasks));
  EXPECT_GT(drains.load(), 0);

  registry.disable();
  registry.reset();
  tracer.disable();
  tracer.clear();
  tracer.enable(trace::Tracer::kDefaultEventsPerThread);
  tracer.disable();
}

}  // namespace
}  // namespace aviv
