// Metrics registry: log₂ bucket math, quantile interpolation, sharded
// counter aggregation, kind checking, and the --metrics-json shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace aviv::metrics {
namespace {

TEST(MetricsHistogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(-5), 0);  // clamped domain
  EXPECT_EQ(Histogram::bucketOf(1), 1);
  EXPECT_EQ(Histogram::bucketOf(2), 2);
  EXPECT_EQ(Histogram::bucketOf(3), 2);
  EXPECT_EQ(Histogram::bucketOf(4), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 10);
  EXPECT_EQ(Histogram::bucketOf(1024), 11);
  EXPECT_EQ(Histogram::bucketOf(INT64_MAX), 63);
  EXPECT_LT(Histogram::bucketOf(INT64_MAX), Histogram::kBuckets);
}

TEST(MetricsHistogram, BucketLowerBoundsMatchBucketOf) {
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::bucketLowerBound(2), 2);
  EXPECT_EQ(Histogram::bucketLowerBound(3), 4);
  EXPECT_EQ(Histogram::bucketLowerBound(10), 512);
  // Every bucket's lower bound maps back into that bucket.
  for (int b = 1; b < 64; ++b) {
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLowerBound(b)), b) << b;
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLowerBound(b) - 1), b - 1)
        << b;
  }
  // b >= 64 is unreachable for int64 samples; the bound saturates.
  EXPECT_EQ(Histogram::bucketLowerBound(64), INT64_MAX);
}

TEST(MetricsHistogram, SnapshotTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0);
  EXPECT_EQ(h.snapshot().min, 0);  // empty snapshot is all-zero
  h.record(7);
  h.record(100);
  h.record(3);
  h.record(-9);  // clamps to 0
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.sum, 110);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 100);
  EXPECT_EQ(snap.buckets[0], 1);                       // the clamped -9
  EXPECT_EQ(snap.buckets[Histogram::bucketOf(7)], 1);
  EXPECT_EQ(snap.buckets[Histogram::bucketOf(100)], 1);
}

TEST(MetricsHistogram, QuantilesInterpolateAndClampToObservedRange) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  const Histogram::Snapshot snap = h.snapshot();
  // Exact at the extremes regardless of bucket resolution.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  // Interior quantiles are log₂-bucket estimates: loose but ordered and
  // within the observed range.
  const double p50 = snap.quantile(0.50);
  const double p90 = snap.quantile(0.90);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p90, 100.0);
  EXPECT_LE(p50, p90);
  // Single-sample histogram: every quantile is that sample.
  Histogram one;
  one.record(42);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.snapshot().quantile(0.99), 42.0);
}

TEST(MetricsCounter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kAddsPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsRegistry, FindOrCreateIsStableAndKindChecked) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.registry.counter");
  EXPECT_EQ(&c, &reg.counter("test.registry.counter"));
  EXPECT_THROW((void)reg.histogram("test.registry.counter"),
               std::runtime_error);
  EXPECT_THROW((void)reg.gauge("test.registry.counter"), std::runtime_error);
  // References survive reset(); values are zeroed.
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsRegistry, ToJsonHasSchemaShape) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("test.json.counter").add(3);
  reg.gauge("test.json.gauge").set(-4);
  Histogram& h = reg.histogram("test.json.hist");
  h.record(1);
  h.record(1000);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\": {\"count\": 2, \"sum\": 1001, "
                      "\"min\": 1, \"max\": 1000"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Buckets render as [upperBound, count] pairs; only non-empty buckets.
  EXPECT_NE(json.find("\"buckets\": [[1, 1], [1023, 1]]"), std::string::npos);
  reg.reset();
}

TEST(MetricsRegistry, GatingFlagFlipsOnAndOff) {
  EXPECT_FALSE(on());
  Registry::instance().enable();
  EXPECT_TRUE(on());
  Registry::instance().disable();
  EXPECT_FALSE(on());
}

}  // namespace
}  // namespace aviv::metrics
