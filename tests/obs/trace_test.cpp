// Flight-recorder tracer: ring-wrap retention, disabled no-op, span/arg
// recording, JSON export shape, and the flight-record tail dump.
//
// The Tracer is a process singleton, so every test starts by forcing a
// known state (enable with an explicit capacity + clear).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/trace.h"
#include "support/io.h"

namespace aviv::trace {
namespace {

size_t countOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().enable(kCapacity);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
    // Restore the default capacity so later tests/binaries see it.
    Tracer::instance().enable(Tracer::kDefaultEventsPerThread);
    Tracer::instance().disable();
  }
  static constexpr size_t kCapacity = 8;
};

TEST_F(TraceTest, DisabledEmitIsANoOp) {
  Tracer::instance().disable();
  instant("test", "dropped");
  counter("test", "series", "v", 1);
  { Span span("test", "dropped-span"); }
  EXPECT_EQ(Tracer::instance().retained(), 0u);
  // Re-enabling later does not resurrect anything.
  Tracer::instance().enable(kCapacity);
  EXPECT_EQ(Tracer::instance().retained(), 0u);
}

TEST_F(TraceTest, SpanBecomesDisabledMidScopeWithoutEmitting) {
  Span span("test", "interrupted");
  Tracer::instance().disable();
  // dtor runs here with tracing off: nothing may be recorded.
  // (checked in the next statement via a fresh scope)
  {
    Span inner("test", "never");
  }
  EXPECT_EQ(Tracer::instance().retained(), 0u);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsOverwritten) {
  for (int i = 0; i < 20; ++i)
    instant("test", "ev:", std::to_string(i));
  EXPECT_EQ(Tracer::instance().retained(), kCapacity);
  EXPECT_EQ(Tracer::instance().overwritten(), 20 - int64_t{kCapacity});
  const std::string json = Tracer::instance().exportJson();
  // Oldest events were overwritten; the newest survive.
  EXPECT_EQ(json.find("ev:0\""), std::string::npos);
  EXPECT_NE(json.find("ev:19"), std::string::npos);
  EXPECT_NE(json.find("\"overwritten\":12"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEventsAndResetsCounters) {
  for (int i = 0; i < 20; ++i) instant("test", "ev");
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().retained(), 0u);
  EXPECT_EQ(Tracer::instance().overwritten(), 0);
  instant("test", "fresh");
  EXPECT_EQ(Tracer::instance().retained(), 1u);
}

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  {
    Span span("cat", "work:", "block");
    span.arg("items", 42);
    span.arg("cost", 7);
    span.arg("ignored", 1);  // beyond kMaxArgs: silently dropped
  }
  const std::string json = Tracer::instance().exportJson();
  EXPECT_NE(json.find("\"name\":\"work:block\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"items\":42"), std::string::npos);
  EXPECT_NE(json.find("\"cost\":7"), std::string::npos);
  EXPECT_EQ(json.find("ignored"), std::string::npos);
}

TEST_F(TraceTest, NamesAreTruncatedNeverOverrun) {
  const std::string longName(200, 'x');
  instant("test", longName, longName);
  const std::string json = Tracer::instance().exportJson();
  EXPECT_NE(json.find(std::string(Event::kNameCapacity - 1, 'x')),
            std::string::npos);
  EXPECT_EQ(json.find(std::string(Event::kNameCapacity, 'x')),
            std::string::npos);
}

TEST_F(TraceTest, CounterEventCarriesSeriesValue) {
  counter("search", "best-cost", "instructions", 13);
  const std::string json = Tracer::instance().exportJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"instructions\":13"), std::string::npos);
}

TEST_F(TraceTest, ExportIsValidChromeTraceShape) {
  instant("test", "one");
  { Span span("test", "two"); }
  const std::string json = Tracer::instance().exportJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"overwritten\":0}"),
            std::string::npos);
  EXPECT_EQ(countOccurrences(json, "\"pid\":1"), 2u);
}

TEST_F(TraceTest, FlightRecordWritesLastNTail) {
  for (int i = 0; i < 6; ++i) instant("test", "ev:", std::to_string(i));
  const std::string path = ::testing::TempDir() + "/aviv_flight_test.json";
  ASSERT_TRUE(Tracer::instance().writeFlightRecord(path, 3));
  const std::string json = readFile(path);
  EXPECT_EQ(countOccurrences(json, "\"name\":\"ev:"), 3u);
  EXPECT_EQ(json.find("ev:2\""), std::string::npos);
  EXPECT_NE(json.find("ev:5"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FlightRecordRefusesEmptyTraceAndBadPath) {
  EXPECT_FALSE(Tracer::instance().writeFlightRecord(
      ::testing::TempDir() + "/aviv_flight_empty.json"));
  instant("test", "ev");
  EXPECT_FALSE(Tracer::instance().writeFlightRecord(
      "/nonexistent-dir/zzz/flight.json"));
}

TEST_F(TraceTest, HostileNamesAreEscapedInExport) {
  instant("test", "bad\"name\r\n\x01");
  const std::string json = Tracer::instance().exportJson();
  EXPECT_NE(json.find("bad\\\"name\\r\\n\\u0001"), std::string::npos);
}

}  // namespace
}  // namespace aviv::trace
