// CompileServer integration tests: a real server on a real socket (unix and
// TCP, epoll and poll backends), a blocking test client speaking the frame
// protocol, admission-control shedding, graceful drain with zero lost
// responses, protocol-violation handling, torn-close accounting, and the
// net-accept / net-read / net-write fault-injection sites.
#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"

namespace aviv::net {
namespace {

using namespace std::chrono_literals;

Endpoint uniqueUnixEndpoint() {
  static int counter = 0;
  Endpoint endpoint;
  endpoint.isUnix = true;
  endpoint.path = "/tmp/aviv_net_test_" + std::to_string(::getpid()) + "_" +
                  std::to_string(++counter) + ".sock";
  return endpoint;
}

// Echo-style handler: answers kOk with the request line as detail, after an
// optional artificial service time (to make admission control observable).
RequestHandler echoHandler(std::chrono::milliseconds delay = 0ms) {
  return [delay](const NetRequest& request) {
    if (delay > 0ms) std::this_thread::sleep_for(delay);
    NetResponse response;
    response.type = FrameType::kOk;
    response.detail = request.line;
    response.body = request.wantAsm ? "asm for " + request.line : "";
    return response;
  };
}

// Owns a server + its serve() thread; stop() is idempotent.
class TestServer {
 public:
  TestServer(ServerConfig config, RequestHandler handler, int poolSize = 2)
      : pool_(poolSize) {
    config.pollIntervalMs = 10;
    server_ = std::make_unique<CompileServer>(std::move(config), pool_,
                                              std::move(handler));
    bound_ = server_->start();
    thread_ = std::thread([this] { server_->serve(); });
  }
  ~TestServer() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->requestStop();
      thread_.join();
    }
  }

  [[nodiscard]] const Endpoint& bound() const { return bound_; }
  [[nodiscard]] CompileServer& server() { return *server_; }

 private:
  ThreadPool pool_;
  std::unique_ptr<CompileServer> server_;
  Endpoint bound_;
  std::thread thread_;
};

// Minimal blocking client for tests.
class Client {
 public:
  explicit Client(const Endpoint& endpoint) : fd_(connectTo(endpoint)) {}

  void sendBytes(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const IoResult io =
          writeSome(fd_.get(), bytes.data() + off, bytes.size() - off);
      ASSERT_EQ(io.error, 0);
      off += static_cast<size_t>(io.n);
    }
  }

  void sendRequest(uint64_t id, const std::string& line,
                   bool wantAsm = false) {
    RequestPayload payload;
    payload.id = id;
    payload.wantAsm = wantAsm;
    payload.line = line;
    sendBytes(encodeFrame(FrameType::kRequest, encodeRequestPayload(payload)));
  }

  // Blocking receive of the next frame; sets eof instead when the server
  // closed cleanly between frames.
  bool recvFrame(Frame* out) {
    char buf[4096];
    for (;;) {
      const FrameDecoder::Status status = decoder_.next(out);
      if (status == FrameDecoder::Status::kFrame) return true;
      EXPECT_NE(status, FrameDecoder::Status::kError) << decoder_.error();
      if (status == FrameDecoder::Status::kError) return false;
      const IoResult io = readSome(fd_.get(), buf, sizeof(buf));
      if (io.eof || io.error != 0) return false;
      decoder_.feed(buf, static_cast<size_t>(io.n));
    }
  }

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  FrameDecoder decoder_;
};

void waitFor(const std::function<bool()>& predicate, int timeoutMs = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (!predicate()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for condition";
    std::this_thread::sleep_for(2ms);
  }
}

TEST(NetServer, ServesRequestsOverUnixSocket) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());

  Client client(server.bound());
  client.sendRequest(1, "alpha");
  client.sendRequest(2, "beta", /*wantAsm=*/true);
  for (int i = 0; i < 2; ++i) {
    Frame frame;
    ASSERT_TRUE(client.recvFrame(&frame));
    EXPECT_EQ(frame.type, FrameType::kOk);
    const ResponsePayload payload = decodeResponsePayload(frame.payload);
    if (payload.id == 1) {
      EXPECT_EQ(payload.detail, "alpha");
      EXPECT_TRUE(payload.body.empty());
    } else {
      EXPECT_EQ(payload.id, 2u);
      EXPECT_EQ(payload.detail, "beta");
      EXPECT_EQ(payload.body, "asm for beta");
    }
  }
  client.close();
  server.stop();
  const ServerStats stats = server.server().stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.responses, 2);
  EXPECT_EQ(stats.ok, 2);
  EXPECT_EQ(stats.droppedResponses, 0);
}

TEST(NetServer, ServesOverTcpWithEphemeralPort) {
  ServerConfig config;
  config.listen = parseEndpoint("127.0.0.1:0");
  TestServer server(config, echoHandler());
  ASSERT_NE(server.bound().port, 0) << "kernel should assign a real port";

  Client client(server.bound());
  client.sendRequest(7, "tcp line");
  Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_EQ(decodeResponsePayload(frame.payload).id, 7u);
}

TEST(NetServer, PollBackendServes) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  config.backend = EventLoop::Backend::kPoll;
  TestServer server(config, echoHandler());

  Client client(server.bound());
  client.sendRequest(1, "via poll");
  Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame));
  EXPECT_EQ(decodeResponsePayload(frame.payload).detail, "via poll");
}

TEST(NetServer, QueueCapOneShedsWithRetryAfter) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  config.queueCapacity = 1;
  config.retryAfterMs = 7;
  TestServer server(config, echoHandler(100ms));

  Client client(server.bound());
  constexpr int kBurst = 12;
  for (int i = 0; i < kBurst; ++i)
    client.sendRequest(static_cast<uint64_t>(i + 1), "burst");
  int okCount = 0;
  int shedCount = 0;
  for (int i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(client.recvFrame(&frame));
    if (frame.type == FrameType::kRetryAfter) {
      ++shedCount;
      const ResponsePayload payload = decodeResponsePayload(frame.payload);
      EXPECT_NE(payload.detail.find("retry after 7ms"), std::string::npos);
    } else {
      EXPECT_EQ(frame.type, FrameType::kOk);
      ++okCount;
    }
  }
  // 2 workers + 1 queue slot: a 12-deep burst must shed at least once, and
  // admitted requests must all complete.
  EXPECT_GT(shedCount, 0);
  EXPECT_GT(okCount, 0);
  EXPECT_EQ(okCount + shedCount, kBurst);
  server.stop();
  const ServerStats stats = server.server().stats();
  EXPECT_EQ(stats.shed, shedCount);
  EXPECT_LE(stats.maxQueueDepth, 1);
}

TEST(NetServer, DrainFinishesInFlightRequestsWithZeroLoss) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler(50ms));

  Client client(server.bound());
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i)
    client.sendRequest(static_cast<uint64_t>(i + 1), "draining");
  // Wait until every request is admitted, then stop mid-flight: the drain
  // contract is that all admitted requests still get their responses.
  waitFor([&] { return server.server().stats().requests == kRequests; });
  server.stop();

  int received = 0;
  Frame frame;
  while (client.recvFrame(&frame)) {
    EXPECT_EQ(frame.type, FrameType::kOk);
    ++received;
  }
  EXPECT_EQ(received, kRequests);  // then clean EOF, nothing lost
  const ServerStats stats = server.server().stats();
  EXPECT_EQ(stats.responses, kRequests);
  EXPECT_EQ(stats.droppedResponses, 0);
}

TEST(NetServer, MalformedFrameGetsErrorResponseAndClose) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());

  Client client(server.bound());
  client.sendBytes(std::string(64, 'X'));  // not a frame
  Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_NE(decodeResponsePayload(frame.payload).detail.find("magic"),
            std::string::npos);
  EXPECT_FALSE(client.recvFrame(&frame));  // server closed the connection
  waitFor([&] { return server.server().stats().frameErrors > 0; });
}

TEST(NetServer, OversizedDeclaredPayloadRejected) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  config.maxFrameBytes = 1024;
  TestServer server(config, echoHandler());

  Client client(server.bound());
  RequestPayload payload;
  payload.id = 1;
  payload.line = std::string(4096, 'a');
  client.sendBytes(
      encodeFrame(FrameType::kRequest, encodeRequestPayload(payload)));
  Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_NE(decodeResponsePayload(frame.payload).detail.find("exceeds cap"),
            std::string::npos);
  EXPECT_FALSE(client.recvFrame(&frame));
}

TEST(NetServer, TornMidFrameCloseIsCounted) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());
  {
    Client client(server.bound());
    const std::string bytes =
        encodeFrame(FrameType::kRequest,
                    encodeRequestPayload({1, false, "half a request"}));
    client.sendBytes(bytes.substr(0, bytes.size() - 5));
    waitFor([&] { return server.server().stats().accepted == 1; });
    client.close();  // torn: mid-frame bytes are buffered server-side
  }
  waitFor([&] { return server.server().stats().tornConnections == 1; });
}

TEST(NetServer, HalfCloseStillAnswersAdmittedRequests) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler(20ms));

  Endpoint endpoint = server.bound();
  Fd fd = connectTo(endpoint);
  RequestPayload payload;
  payload.id = 9;
  payload.line = "half close";
  const std::string bytes =
      encodeFrame(FrameType::kRequest, encodeRequestPayload(payload));
  size_t off = 0;
  while (off < bytes.size()) {
    const IoResult io =
        writeSome(fd.get(), bytes.data() + off, bytes.size() - off);
    ASSERT_EQ(io.error, 0);
    off += static_cast<size_t>(io.n);
  }
  ::shutdown(fd.get(), SHUT_WR);  // done sending; still reading

  FrameDecoder decoder;
  Frame frame;
  char buf[4096];
  bool gotFrame = false;
  for (;;) {
    if (decoder.next(&frame) == FrameDecoder::Status::kFrame) {
      gotFrame = true;
      break;
    }
    const IoResult io = readSome(fd.get(), buf, sizeof(buf));
    if (io.eof || io.error != 0) break;
    decoder.feed(buf, static_cast<size_t>(io.n));
  }
  ASSERT_TRUE(gotFrame);
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_EQ(decodeResponsePayload(frame.payload).id, 9u);
}

TEST(NetServer, NetReadFailpointDropsConnectionServerSurvives) {
  FailPoints::instance().configure("net-read:1:1");
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());

  Client victim(server.bound());
  victim.sendRequest(1, "doomed");
  Frame frame;
  EXPECT_FALSE(victim.recvFrame(&frame));  // injected read error: dropped
  FailPoints::instance().clear();

  Client survivor(server.bound());
  survivor.sendRequest(2, "alive");
  ASSERT_TRUE(survivor.recvFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kOk);
  server.stop();
  EXPECT_EQ(server.server().stats().readErrors, 1);
}

TEST(NetServer, NetAcceptFailpointDropsConnectionServerSurvives) {
  FailPoints::instance().configure("net-accept:1:1");
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());

  Client victim(server.bound());
  victim.sendRequest(1, "never admitted");
  Frame frame;
  EXPECT_FALSE(victim.recvFrame(&frame));
  FailPoints::instance().clear();

  Client survivor(server.bound());
  survivor.sendRequest(2, "alive");
  ASSERT_TRUE(survivor.recvFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kOk);
  server.stop();
  EXPECT_EQ(server.server().stats().acceptErrors, 1);
}

TEST(NetServer, NetWriteFailpointIsTransientResponseStillArrives) {
  FailPoints::instance().configure("net-write:1:1");
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler());

  Client client(server.bound());
  client.sendRequest(1, "retried write");
  Frame frame;
  ASSERT_TRUE(client.recvFrame(&frame));  // retried on next writable event
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_EQ(decodeResponsePayload(frame.payload).detail, "retried write");
  FailPoints::instance().clear();
  server.stop();
  EXPECT_EQ(server.server().stats().writeErrors, 1);
}

TEST(NetServer, ManyConnectionsEachGetTheirOwnAnswers) {
  ServerConfig config;
  config.listen = uniqueUnixEndpoint();
  TestServer server(config, echoHandler(), /*poolSize=*/4);

  constexpr int kConns = 32;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    clients.push_back(std::make_unique<Client>(server.bound()));
    clients.back()->sendRequest(static_cast<uint64_t>(i),
                                "conn " + std::to_string(i));
  }
  for (int i = 0; i < kConns; ++i) {
    Frame frame;
    ASSERT_TRUE(clients[i]->recvFrame(&frame));
    const ResponsePayload payload = decodeResponsePayload(frame.payload);
    EXPECT_EQ(payload.id, static_cast<uint64_t>(i));
    EXPECT_EQ(payload.detail, "conn " + std::to_string(i));
  }
}

TEST(NetServer, ParseEndpointGrammar) {
  const Endpoint unix_ = parseEndpoint("unix:/tmp/x.sock");
  EXPECT_TRUE(unix_.isUnix);
  EXPECT_EQ(unix_.path, "/tmp/x.sock");
  const Endpoint tcp = parseEndpoint("127.0.0.1:7070");
  EXPECT_FALSE(tcp.isUnix);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7070);
  const Endpoint bare = parseEndpoint(":8080");
  EXPECT_EQ(bare.host, "127.0.0.1");
  EXPECT_EQ(bare.port, 8080);
  EXPECT_THROW(parseEndpoint("no-port-here"), Error);
  EXPECT_THROW(parseEndpoint("host:notaport"), Error);
}

}  // namespace
}  // namespace aviv::net
