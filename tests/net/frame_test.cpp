// Wire-framing tests: round-trips for every frame type, incremental
// (dribbled) decoding, and the hostile-input battery — truncated headers,
// oversized declared payloads (rejected from the header alone, before any
// payload is buffered), checksum corruption, bad magic/version/type, torn
// mid-frame closes, and truncated payload codecs.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

#include "support/error.h"

namespace aviv::net {
namespace {

Frame decodeOne(FrameDecoder& decoder, const std::string& bytes) {
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kFrame);
  return frame;
}

TEST(NetFrame, RoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kRequest, FrameType::kOk, FrameType::kHit,
        FrameType::kDegraded, FrameType::kQuarantined, FrameType::kError,
        FrameType::kRetryAfter, FrameType::kHeartbeat}) {
    const std::string payload = "payload for " + std::string(frameTypeName(type));
    FrameDecoder decoder;
    const Frame frame = decodeOne(decoder, encodeFrame(type, payload));
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_FALSE(decoder.midFrame());
  }
}

TEST(NetFrame, HeartbeatIsALivenessFrameNotAResponse) {
  // kHeartbeat is the worker-pool liveness beat (src/proc): it round-trips
  // through the codec but must never be mistaken for a client-facing
  // response type by the supervisor's dispatch loop.
  FrameDecoder decoder;
  const Frame frame =
      decodeOne(decoder, encodeFrame(FrameType::kHeartbeat, ""));
  EXPECT_EQ(frame.type, FrameType::kHeartbeat);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_STREQ(frameTypeName(FrameType::kHeartbeat), "heartbeat");
  EXPECT_FALSE(isResponseType(FrameType::kHeartbeat));
  EXPECT_TRUE(isResponseType(FrameType::kOk));
}

TEST(NetFrame, RoundTripsEmptyPayload) {
  FrameDecoder decoder;
  const Frame frame = decodeOne(decoder, encodeFrame(FrameType::kOk, ""));
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetFrame, DecodesByteByByte) {
  const std::string bytes = encodeFrame(FrameType::kRequest, "dribble");
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kNeedMore);
    EXPECT_TRUE(decoder.midFrame());
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "dribble");
}

TEST(NetFrame, DecodesMultipleFramesFromOneFeed) {
  const std::string bytes = encodeFrame(FrameType::kOk, "one") +
                            encodeFrame(FrameType::kHit, "two") +
                            encodeFrame(FrameType::kError, "three");
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "one");
  ASSERT_EQ(decoder.next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "two");
  ASSERT_EQ(decoder.next(&frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.payload, "three");
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kNeedMore);
}

TEST(NetFrame, TruncatedHeaderNeedsMore) {
  const std::string bytes = encodeFrame(FrameType::kOk, "x");
  FrameDecoder decoder;
  decoder.feed(bytes.data(), kFrameHeaderBytes - 1);
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kNeedMore);
  EXPECT_TRUE(decoder.midFrame());
}

TEST(NetFrame, TornMidPayloadIsDetectable) {
  const std::string bytes = encodeFrame(FrameType::kRequest, "torn payload");
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 4);
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kNeedMore);
  // An EOF now is a torn, mid-frame close: midFrame() is the server's
  // signal to count the connection as torn rather than cleanly finished.
  EXPECT_TRUE(decoder.midFrame());
}

TEST(NetFrame, BadMagicPoisons) {
  std::string bytes = encodeFrame(FrameType::kOk, "x");
  bytes[0] = 'Z';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("bad magic"), std::string::npos);
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned decoders stay poisoned: more bytes are discarded.
  const std::string good = encodeFrame(FrameType::kOk, "y");
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetFrame, UnsupportedVersionPoisons) {
  std::string bytes = encodeFrame(FrameType::kOk, "x");
  bytes[4] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("version"), std::string::npos);
}

TEST(NetFrame, UnknownTypePoisons) {
  std::string bytes = encodeFrame(FrameType::kOk, "x");
  bytes[6] = static_cast<char>(0x63);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("unknown type"), std::string::npos);
}

TEST(NetFrame, NonzeroReservedBytePoisons) {
  std::string bytes = encodeFrame(FrameType::kOk, "x");
  bytes[7] = 1;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("reserved"), std::string::npos);
}

TEST(NetFrame, ChecksumMismatchPoisons) {
  std::string bytes = encodeFrame(FrameType::kRequest, "checksummed");
  bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("checksum"), std::string::npos);
}

TEST(NetFrame, OversizedDeclaredPayloadRejectedFromHeaderAlone) {
  // A header declaring a payload over the cap must poison the decoder
  // while ONLY the 24 header bytes are buffered — the attack costs the
  // server no payload memory.
  FrameDecoder decoder(/*maxPayload=*/1024);
  std::string huge = encodeFrame(FrameType::kRequest, std::string(2048, 'a'));
  decoder.feed(huge.data(), kFrameHeaderBytes);
  EXPECT_EQ(decoder.buffered(), kFrameHeaderBytes);
  Frame frame;
  EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("exceeds cap"), std::string::npos);
  // Post-poison feeds are discarded, so the remaining 2048 payload bytes
  // never accumulate either.
  decoder.feed(huge.data() + kFrameHeaderBytes,
               huge.size() - kFrameHeaderBytes);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetFrame, PayloadAtCapIsAccepted) {
  FrameDecoder decoder(/*maxPayload=*/64);
  const std::string payload(64, 'b');
  const Frame frame =
      decodeOne(decoder, encodeFrame(FrameType::kOk, payload));
  EXPECT_EQ(frame.payload, payload);
}

TEST(NetFrame, RequestPayloadRoundTrips) {
  RequestPayload in;
  in.id = 0x1122334455667788ull;
  in.wantAsm = true;
  in.line = "machine=arch1 block=ex1 timeout=0.5";
  const RequestPayload out = decodeRequestPayload(encodeRequestPayload(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.wantAsm, in.wantAsm);
  EXPECT_EQ(out.line, in.line);
}

TEST(NetFrame, ResponsePayloadRoundTrips) {
  ResponsePayload in;
  in.id = 42;
  in.wallMicros = 123456;
  in.queueMicros = 789;
  in.detail = "block=ex1 machine=Arch1 blocks=1 instrs=6 cache=hit";
  in.body = "r1 = add r2, r3\n";
  const ResponsePayload out =
      decodeResponsePayload(encodeResponsePayload(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.wallMicros, in.wallMicros);
  EXPECT_EQ(out.queueMicros, in.queueMicros);
  EXPECT_EQ(out.detail, in.detail);
  EXPECT_EQ(out.body, in.body);
}

TEST(NetFrame, TruncatedPayloadCodecsThrowError) {
  const std::string request = encodeRequestPayload({7, true, "line"});
  EXPECT_THROW(decodeRequestPayload(
                   std::string_view(request).substr(0, request.size() - 2)),
               Error);
  ResponsePayload response;
  response.detail = "detail";
  const std::string encoded = encodeResponsePayload(response);
  EXPECT_THROW(decodeResponsePayload(
                   std::string_view(encoded).substr(0, encoded.size() - 3)),
               Error);
  // Trailing garbage is rejected too — payload length is load-bearing.
  EXPECT_THROW(decodeRequestPayload(request + "zz"), Error);
}

TEST(NetFrame, TypeNamesAndResponsePredicate) {
  EXPECT_STREQ(frameTypeName(FrameType::kRetryAfter), "retry-after");
  EXPECT_FALSE(isResponseType(FrameType::kRequest));
  EXPECT_TRUE(isResponseType(FrameType::kHit));
  EXPECT_TRUE(isResponseType(FrameType::kRetryAfter));
}

}  // namespace
}  // namespace aviv::net
