#include "isdl/parser.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace aviv {
namespace {

constexpr const char* kTiny = R"(
  machine Tiny {
    regfile RF size 4;
    memory DM size 64 data;
    bus B capacity 1;
    unit U regfile RF {
      op ADD "add";
      op SUB;
    }
    transfer RF <-> DM bus B;
  }
)";

TEST(IsdlParser, ParsesTinyMachine) {
  const Machine m = parseMachine(kTiny);
  EXPECT_EQ(m.name(), "Tiny");
  ASSERT_EQ(m.regFiles().size(), 1u);
  EXPECT_EQ(m.regFiles()[0].numRegs, 4);
  ASSERT_EQ(m.memories().size(), 1u);
  EXPECT_TRUE(m.memories()[0].isDataMemory);
  ASSERT_EQ(m.units().size(), 1u);
  EXPECT_EQ(m.units()[0].ops.size(), 2u);
  EXPECT_EQ(m.units()[0].ops[0].mnemonic, "add");
  // Default mnemonic is the lower-cased op name.
  EXPECT_EQ(m.units()[0].ops[1].mnemonic, "sub");
  EXPECT_EQ(m.transfers().size(), 2u);  // <-> expands to both directions
}

TEST(IsdlParser, CompleteTransferGeneratesAllPairs) {
  const Machine m = parseMachine(R"(
    machine M {
      regfile A size 2;
      regfile B size 2;
      memory DM size 8 data;
      bus X capacity 1;
      unit U regfile A { op ADD; }
      transfer complete bus X;
    }
  )");
  // 3 storages -> 3*2 directed pairs.
  EXPECT_EQ(m.transfers().size(), 6u);
}

TEST(IsdlParser, ParsesConstraints) {
  const Machine m = parseMachine(R"(
    machine M {
      regfile A size 2;
      regfile B size 2;
      memory DM size 8 data;
      bus X;
      unit U1 regfile A { op MUL; }
      unit U2 regfile B { op MUL; }
      transfer complete bus X;
      constraint "one multiplier" { U1.MUL, U2.MUL }
    }
  )");
  ASSERT_EQ(m.constraints().size(), 1u);
  EXPECT_EQ(m.constraints()[0].note, "one multiplier");
  EXPECT_EQ(m.constraints()[0].together.size(), 2u);
  EXPECT_EQ(m.constraints()[0].together[0].op, Op::kMul);
}

TEST(IsdlParser, ShippedMachinesParseAndValidate) {
  for (const std::string name : {"arch1", "arch2", "arch3", "arch4"}) {
    const Machine m = loadMachine(name);
    EXPECT_FALSE(m.units().empty()) << name;
  }
}

TEST(IsdlParser, Arch1MatchesPaperFigure3) {
  const Machine m = loadMachine("arch1");
  ASSERT_EQ(m.units().size(), 3u);
  const auto u1 = m.findUnit("U1");
  const auto u2 = m.findUnit("U2");
  const auto u3 = m.findUnit("U3");
  ASSERT_TRUE(u1 && u2 && u3);
  EXPECT_TRUE(m.unit(*u1).findOp(Op::kAdd));
  EXPECT_TRUE(m.unit(*u1).findOp(Op::kSub));
  EXPECT_FALSE(m.unit(*u1).findOp(Op::kMul));
  EXPECT_TRUE(m.unit(*u2).findOp(Op::kAdd));
  EXPECT_TRUE(m.unit(*u2).findOp(Op::kSub));
  EXPECT_TRUE(m.unit(*u2).findOp(Op::kMul));
  EXPECT_TRUE(m.unit(*u3).findOp(Op::kAdd));
  EXPECT_FALSE(m.unit(*u3).findOp(Op::kSub));
  EXPECT_TRUE(m.unit(*u3).findOp(Op::kMul));
  // COMPL only on U1 (Figure 6 example).
  EXPECT_TRUE(m.unit(*u1).findOp(Op::kCompl));
  EXPECT_FALSE(m.unit(*u2).findOp(Op::kCompl));
}

TEST(IsdlParser, Arch2IsArch1MinusSubAndU3) {
  const Machine m = loadMachine("arch2");
  ASSERT_EQ(m.units().size(), 2u);
  const auto u1 = m.findUnit("U1");
  ASSERT_TRUE(u1);
  EXPECT_FALSE(m.unit(*u1).findOp(Op::kSub));
  EXPECT_FALSE(m.findUnit("U3"));
}

TEST(IsdlParser, ErrorOnUnknownRegfile) {
  EXPECT_THROW(parseMachine(R"(
    machine M {
      memory DM size 8 data;
      bus X;
      unit U regfile NOPE { op ADD; }
    }
  )"),
               Error);
}

TEST(IsdlParser, ErrorOnUnknownOpKind) {
  EXPECT_THROW(parseMachine(R"(
    machine M {
      regfile A size 2;
      memory DM size 8 data;
      bus X;
      unit U regfile A { op FROBNICATE; }
    }
  )"),
               Error);
}

TEST(IsdlParser, ErrorOnTrailingInput) {
  EXPECT_THROW(parseMachine(R"(
    machine M {
      regfile A size 2;
      memory DM size 8 data;
      bus X;
      unit U regfile A { op ADD; }
    } extra
  )"),
               Error);
}

TEST(IsdlParser, ErrorsCarrySourceLocation) {
  try {
    (void)parseMachine("machine M {\n  bogus_clause;\n}");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.loc().line, 2u) << e.what();
  }
}

TEST(IsdlParser, ValidationRejectsMultiCycleOps) {
  EXPECT_THROW(parseMachine(R"(
    machine M {
      regfile A size 2;
      memory DM size 8 data;
      bus X;
      unit U regfile A { op MUL latency 2; }
    }
  )"),
               Error);
}

TEST(IsdlParser, ValidationRejectsConstraintOnMissingOp) {
  EXPECT_THROW(parseMachine(R"(
    machine M {
      regfile A size 2;
      memory DM size 8 data;
      bus X;
      unit U1 regfile A { op ADD; }
      unit U2 regfile A { op MUL; }
      transfer complete bus X;
      constraint { U1.MUL, U2.MUL }
    }
  )"),
               Error);
}

// PR 4 input hardening: one bad clause must not hide errors in later
// clauses — panic-mode recovery resynchronises at clause boundaries.
TEST(IsdlParser, PanicModeReportsMultipleDiagnostics) {
  try {
    (void)parseMachine(R"(
      machine Broken {
        regfile A size ;
        memory DM size 8 data;
        bus X;
        unit U regfile A { op ADD; }
        transfer complete bus ;
      }
    )",
                       "broken.isdl");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.sourceName(), "broken.isdl");
    ASSERT_GE(e.diagnostics().size(), 2u) << e.what();
    for (const Diagnostic& d : e.diagnostics())
      EXPECT_TRUE(d.loc.valid()) << d.message;
    EXPECT_LT(e.diagnostics()[0].loc.line, e.diagnostics()[1].loc.line);
  }
}

TEST(IsdlParser, GarbageInputRejectedWithoutAbort) {
  // Arbitrary non-ISDL bytes must raise a recoverable Error, never an
  // AVIV_CHECK abort (the fuzzer's contract, spot-checked here).
  for (const char* junk :
       {"", "machine", "machine M {", "}{;;;", "machine M { unit }",
        "machine M { regfile A size 99999999999999999999; }"}) {
    EXPECT_THROW((void)parseMachine(junk, "junk"), Error) << junk;
  }
}

}  // namespace
}  // namespace aviv
