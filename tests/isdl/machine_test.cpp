#include "isdl/machine.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "support/error.h"

namespace aviv {
namespace {

Machine tinyMachine() {
  Machine m("tiny");
  const RegFileId rf = m.addRegFile({"RF", 4});
  const MemoryId dm = m.addMemory({"DM", 64, true});
  const BusId bus = m.addBus({"B", 1});
  FunctionalUnit u;
  u.name = "U";
  u.regFile = rf;
  u.ops.push_back({Op::kAdd, "add", 1});
  m.addUnit(std::move(u));
  m.addTransfer({Loc::regFile(rf), Loc::memory(dm), bus});
  m.addTransfer({Loc::memory(dm), Loc::regFile(rf), bus});
  return m;
}

TEST(Machine, LookupsByName) {
  const Machine m = tinyMachine();
  EXPECT_TRUE(m.findRegFile("RF").has_value());
  EXPECT_FALSE(m.findRegFile("XX").has_value());
  EXPECT_TRUE(m.findMemory("DM").has_value());
  EXPECT_TRUE(m.findBus("B").has_value());
  EXPECT_TRUE(m.findUnit("U").has_value());
}

TEST(Machine, UnitLocAndDataMemory) {
  const Machine m = tinyMachine();
  const Loc loc = m.unitLoc(0);
  EXPECT_TRUE(loc.isRegFile());
  EXPECT_EQ(m.locName(loc), "RF");
  EXPECT_EQ(m.dataMemory(), 0);
  EXPECT_EQ(m.locName(m.dataMemoryLoc()), "DM");
}

TEST(Machine, WithRegisterCountResizesAllBanks) {
  const Machine m = loadMachine("arch1").withRegisterCount(2);
  for (const RegFile& rf : m.regFiles()) EXPECT_EQ(rf.numRegs, 2);
}

TEST(Machine, FindOpReturnsIndex) {
  const Machine m = loadMachine("arch1");
  const FunctionalUnit& u2 = m.unit(*m.findUnit("U2"));
  const auto idx = u2.findOp(Op::kMul);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(u2.ops[static_cast<size_t>(*idx)].op, Op::kMul);
}

TEST(Machine, ValidateCatchesDuplicateNames) {
  Machine m = tinyMachine();
  m.addRegFile({"RF", 4});  // duplicate
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesSelfTransfer) {
  Machine m = tinyMachine();
  m.addTransfer({Loc::regFile(0), Loc::regFile(0), 0});
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesEmptyUnit) {
  Machine m = tinyMachine();
  FunctionalUnit u;
  u.name = "Empty";
  u.regFile = 0;
  m.addUnit(std::move(u));
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, LocEqualityAndOrdering) {
  EXPECT_EQ(Loc::regFile(1), Loc::regFile(1));
  EXPECT_NE(Loc::regFile(1), Loc::regFile(2));
  EXPECT_NE(Loc::regFile(1), Loc::memory(1));
  EXPECT_LT(Loc::regFile(1), Loc::memory(0));  // kind orders first
}

TEST(Machine, SummaryMentionsUnitsAndOps) {
  const std::string s = loadMachine("arch1").summary();
  EXPECT_NE(s.find("U1"), std::string::npos);
  EXPECT_NE(s.find("MUL"), std::string::npos);
  EXPECT_NE(s.find("DM"), std::string::npos);
}

}  // namespace
}  // namespace aviv
