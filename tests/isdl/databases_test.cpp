#include "isdl/databases.h"

#include <gtest/gtest.h>

#include "isdl/parser.h"
#include "support/rng.h"

namespace aviv {
namespace {

TEST(OpDatabase, Arch1Correlation) {
  const Machine m = loadMachine("arch1");
  const OpDatabase db(m);
  // ADD on all three units, MUL on U2/U3, SUB on U1/U2, COMPL only on U1.
  EXPECT_EQ(db.implsFor(Op::kAdd).size(), 3u);
  EXPECT_EQ(db.implsFor(Op::kMul).size(), 2u);
  EXPECT_EQ(db.implsFor(Op::kSub).size(), 2u);
  EXPECT_EQ(db.implsFor(Op::kCompl).size(), 1u);
  EXPECT_EQ(db.implsFor(Op::kDiv).size(), 0u);
  EXPECT_TRUE(db.isImplementable(Op::kAdd));
  EXPECT_FALSE(db.isImplementable(Op::kDiv));
}

TEST(OpDatabase, ImplEntriesPointAtRealUnitOps) {
  const Machine m = loadMachine("arch1");
  const OpDatabase db(m);
  for (const OpImpl& impl : db.implsFor(Op::kMul)) {
    const FunctionalUnit& unit = m.unit(impl.unit);
    ASSERT_LT(static_cast<size_t>(impl.opIndex), unit.ops.size());
    EXPECT_EQ(unit.ops[static_cast<size_t>(impl.opIndex)].op, Op::kMul);
  }
}

TEST(TransferDatabase, Arch1SingleBusAllPairsOneHop) {
  const Machine m = loadMachine("arch1");
  const TransferDatabase db(m);
  const Loc rf1 = Loc::regFile(*m.findRegFile("RF1"));
  const Loc rf2 = Loc::regFile(*m.findRegFile("RF2"));
  const Loc dm = m.dataMemoryLoc();
  EXPECT_EQ(db.cost(rf1, rf2), 1);
  EXPECT_EQ(db.cost(rf1, dm), 1);
  EXPECT_EQ(db.cost(dm, rf1), 1);
  EXPECT_EQ(db.cost(rf1, rf1), 0);
  ASSERT_EQ(db.routes(rf1, rf2).size(), 1u);
  EXPECT_EQ(db.routes(rf1, rf2)[0].hops(), 1);
  EXPECT_TRUE(db.routes(rf1, rf1).empty());
}

TEST(TransferDatabase, Arch3MultiHopExpansion) {
  // RF1 <-> RF3 has no direct path in arch3; must route via RF2 or DM.
  const Machine m = loadMachine("arch3");
  const TransferDatabase db(m);
  const Loc rf1 = Loc::regFile(*m.findRegFile("RF1"));
  const Loc rf3 = Loc::regFile(*m.findRegFile("RF3"));
  EXPECT_EQ(db.cost(rf1, rf3), 2);
  const auto& routes = db.routes(rf1, rf3);
  ASSERT_GE(routes.size(), 2u);  // via RF2 (two ways) and via DM
  for (const TransferRoute& route : routes) {
    EXPECT_EQ(route.hops(), 2);
    // Route endpoints must match the pair.
    const TransferPath& first =
        m.transfers()[static_cast<size_t>(route.pathIds[0])];
    const TransferPath& last =
        m.transfers()[static_cast<size_t>(route.pathIds[1])];
    EXPECT_EQ(first.from, rf1);
    EXPECT_EQ(last.to, rf3);
    // Hops must chain.
    EXPECT_EQ(first.to, last.from);
  }
}

TEST(TransferDatabase, Arch3MultipleMinimalRoutesKept) {
  // RF1 <-> RF2 has two direct paths (bus A and the dedicated link).
  const Machine m = loadMachine("arch3");
  const TransferDatabase db(m);
  const Loc rf1 = Loc::regFile(*m.findRegFile("RF1"));
  const Loc rf2 = Loc::regFile(*m.findRegFile("RF2"));
  EXPECT_EQ(db.cost(rf1, rf2), 1);
  EXPECT_EQ(db.routes(rf1, rf2).size(), 2u);
}

TEST(TransferDatabase, UnreachableReported) {
  const Machine m = parseMachine(R"(
    machine M {
      regfile A size 2;
      regfile ISOLATED size 2;
      memory DM size 8 data;
      bus X;
      unit U regfile A { op ADD; }
      transfer A <-> DM bus X;
    }
  )");
  const TransferDatabase db(m);
  const Loc iso = Loc::regFile(*m.findRegFile("ISOLATED"));
  const Loc a = Loc::regFile(*m.findRegFile("A"));
  EXPECT_FALSE(db.reachable(a, iso));
  EXPECT_EQ(db.cost(a, iso), TransferDatabase::kUnreachable);
  EXPECT_TRUE(db.routes(a, iso).empty());
}

TEST(TransferDatabase, RouteCapRespected) {
  const Machine m = loadMachine("arch3");
  const TransferDatabase db(m, /*maxRoutesPerPair=*/1);
  const Loc rf1 = Loc::regFile(*m.findRegFile("RF1"));
  const Loc rf2 = Loc::regFile(*m.findRegFile("RF2"));
  EXPECT_EQ(db.routes(rf1, rf2).size(), 1u);
}

TEST(ConstraintDatabase, DetectsViolation) {
  const Machine m = loadMachine("arch4");
  const ConstraintDatabase db(m);
  const UnitId u2 = *m.findUnit("U2");
  const UnitId u3 = *m.findUnit("U3");
  EXPECT_TRUE(db.allows({{u2, Op::kMul}}));
  EXPECT_TRUE(db.allows({{u2, Op::kMul}, {u3, Op::kAdd}}));
  EXPECT_FALSE(db.allows({{u2, Op::kMul}, {u3, Op::kMul}}));
  const Constraint* violated =
      db.firstViolated({{u3, Op::kMul}, {u2, Op::kMul}, {u2, Op::kAdd}});
  ASSERT_NE(violated, nullptr);
  EXPECT_EQ(violated->note, "shared multiplier array");
}

TEST(ConstraintDatabase, EmptyConstraintsAllowEverything) {
  const Machine m = loadMachine("arch1");
  const ConstraintDatabase db(m);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_TRUE(db.allows({{0, Op::kAdd}, {1, Op::kMul}, {2, Op::kMul}}));
}

TEST(MachineDatabases, BundleBuildsAllThree) {
  const Machine m = loadMachine("arch4");
  const MachineDatabases dbs(m);
  EXPECT_TRUE(dbs.ops.isImplementable(Op::kMac));
  EXPECT_EQ(dbs.constraints.size(), 1u);
  EXPECT_TRUE(dbs.transfers.reachable(Loc::regFile(0), m.dataMemoryLoc()));
}

// Property test: on randomly wired machines, every reported route must be
// (a) connected hop to hop, (b) of exactly the reported minimal length, and
// (c) reachability must match a reference BFS.
TEST(TransferDatabase, RandomTopologiesRoutesAreMinimalAndValid) {
  Rng rng(2024);
  for (int trial = 0; trial < 15; ++trial) {
    Machine m("rand" + std::to_string(trial));
    const int numRf = 2 + static_cast<int>(rng.below(4));
    for (int i = 0; i < numRf; ++i)
      m.addRegFile({"R" + std::to_string(i), 4});
    m.addMemory({"DM", 64, true});
    m.addBus({"B", 1});
    FunctionalUnit u;
    u.name = "U";
    u.regFile = 0;
    u.ops.push_back({Op::kAdd, "add", 1});
    m.addUnit(std::move(u));

    std::vector<Loc> locs;
    for (int i = 0; i < numRf; ++i)
      locs.push_back(Loc::regFile(static_cast<RegFileId>(i)));
    locs.push_back(Loc::memory(0));
    // Sparse random directed edges.
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t a = 0; a < locs.size(); ++a) {
      for (size_t b = 0; b < locs.size(); ++b) {
        if (a == b || !rng.chance(0.4)) continue;
        m.addTransfer({locs[a], locs[b], 0});
        edges.emplace_back(a, b);
      }
    }
    if (edges.empty()) continue;
    m.validate();
    const TransferDatabase db(m);

    // Reference BFS distances.
    const size_t n = locs.size();
    std::vector<std::vector<int>> dist(n, std::vector<int>(n, 1 << 20));
    for (size_t a = 0; a < n; ++a) dist[a][a] = 0;
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& [a, b] : edges) {
        for (size_t s = 0; s < n; ++s) {
          if (dist[s][a] + 1 < dist[s][b]) {
            dist[s][b] = dist[s][a] + 1;
            changed = true;
          }
        }
      }
    }

    for (size_t a = 0; a < n; ++a) {
      for (size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const int expected = dist[a][b];
        if (expected >= (1 << 20)) {
          EXPECT_FALSE(db.reachable(locs[a], locs[b]));
          continue;
        }
        EXPECT_EQ(db.cost(locs[a], locs[b]), expected);
        for (const TransferRoute& route : db.routes(locs[a], locs[b])) {
          EXPECT_EQ(route.hops(), expected);
          Loc cur = locs[a];
          for (int pathId : route.pathIds) {
            const TransferPath& p =
                m.transfers()[static_cast<size_t>(pathId)];
            EXPECT_EQ(p.from, cur);
            cur = p.to;
          }
          EXPECT_EQ(cur, locs[b]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace aviv
