#include "frontend/minic.h"

#include <gtest/gtest.h>

#include "driver/codegen.h"
#include "ir/interp.h"
#include "isdl/parser.h"
#include "support/error.h"
#include "support/rng.h"

namespace aviv {
namespace {

// Interprets a MiniC function on the reference program interpreter.
int64_t interpret(const MiniCFunction& fn,
                  const std::vector<int64_t>& args) {
  std::map<std::string, int64_t> inputs;
  for (size_t i = 0; i < fn.params.size(); ++i)
    inputs[fn.params[i]] = args.at(i);
  return evalProgram(fn.program, inputs).at(kMiniCReturnVariable);
}

// Compiles and simulates a MiniC function on a machine.
int64_t execute(const MiniCFunction& fn, const Machine& machine,
                const std::vector<int64_t>& args) {
  CodeGenerator generator(machine);
  const CompiledProgram compiled = generator.compileProgram(fn.program);
  std::map<std::string, int64_t> inputs;
  for (size_t i = 0; i < fn.params.size(); ++i)
    inputs[fn.params[i]] = args.at(i);
  return simulateProgram(machine, compiled, inputs)
      .at(kMiniCReturnVariable);
}

TEST(MiniC, StraightLineFunction) {
  const MiniCFunction fn = parseMiniC(R"(
    int poly(int x, int a, int b, int c) {
      int x2 = x * x;
      return a * x2 + b * x + c;
    }
  )");
  EXPECT_EQ(fn.name, "poly");
  ASSERT_EQ(fn.params.size(), 4u);
  EXPECT_EQ(interpret(fn, {2, 3, 4, 5}), 3 * 4 + 4 * 2 + 5);
}

TEST(MiniC, IfElseBothReturn) {
  const MiniCFunction fn = parseMiniC(R"(
    int absdiff(int a, int b) {
      if (a > b) { return a - b; } else { return b - a; }
    }
  )");
  EXPECT_EQ(interpret(fn, {9, 4}), 5);
  EXPECT_EQ(interpret(fn, {4, 9}), 5);
}

TEST(MiniC, IfWithoutElseFallsThrough) {
  const MiniCFunction fn = parseMiniC(R"(
    int clamp0(int a) {
      if (a < 0) { a = 0; }
      return a;
    }
  )");
  EXPECT_EQ(interpret(fn, {-7}), 0);
  EXPECT_EQ(interpret(fn, {7}), 7);
}

TEST(MiniC, WhileLoopFactorial) {
  const MiniCFunction fn = parseMiniC(R"(
    int fact(int n) {
      int acc = 1;
      while (n > 1) {
        acc = acc * n;
        n = n - 1;
      }
      return acc;
    }
  )");
  EXPECT_EQ(interpret(fn, {5}), 120);
  EXPECT_EQ(interpret(fn, {0}), 1);
}

TEST(MiniC, NestedControlFlow) {
  const MiniCFunction fn = parseMiniC(R"(
    int collatz_steps(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
  )");
  EXPECT_EQ(interpret(fn, {6}), 8);   // 6 3 10 5 16 8 4 2 1
  EXPECT_EQ(interpret(fn, {1}), 0);
}

TEST(MiniC, IntrinsicsAllowed) {
  const MiniCFunction fn = parseMiniC(R"(
    int f(int a, int b, int c) {
      return max(min(a, b), abs(c));
    }
  )");
  EXPECT_EQ(interpret(fn, {5, 3, -9}), 9);
}

TEST(MiniC, CompiledLoopMatchesInterpreterOnArch1) {
  const MiniCFunction fn = parseMiniC(R"(
    int dot3(int a0, int a1, int a2, int b0, int b1, int b2) {
      int acc = a0 * b0;
      acc = acc + a1 * b1;
      acc = acc + a2 * b2;
      if (acc < 0) { acc = 0 - acc; }
      return acc;
    }
  )");
  const Machine machine = loadMachine("arch1");
  Rng rng(64);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int64_t> args;
    for (int i = 0; i < 6; ++i) args.push_back(rng.intIn(-20, 20));
    EXPECT_EQ(execute(fn, machine, args), interpret(fn, args));
  }
}

TEST(MiniC, CompiledWhileLoopRunsOnSimulator) {
  const MiniCFunction fn = parseMiniC(R"(
    int sumsq(int n) {
      int acc = 0;
      while (n > 0) {
        acc = acc + n * n;
        n = n - 1;
      }
      return acc;
    }
  )");
  const Machine machine = loadMachine("arch1");
  EXPECT_EQ(execute(fn, machine, {4}), 30);
  EXPECT_EQ(execute(fn, machine, {1}), 1);
  EXPECT_EQ(execute(fn, machine, {0}), 0);
}

TEST(MiniC, ErrorOnUndeclaredVariable) {
  EXPECT_THROW((void)parseMiniC("int f(int a) { return a + zz; }"), Error);
}

TEST(MiniC, ErrorOnDoubleDeclaration) {
  EXPECT_THROW(
      (void)parseMiniC("int f(int a) { int a = 1; return a; }"), Error);
}

TEST(MiniC, ErrorOnMissingReturn) {
  EXPECT_THROW((void)parseMiniC("int f(int a) { a = a + 1; }"), Error);
  // A while loop can fall through, so this also lacks a return.
  EXPECT_THROW((void)parseMiniC(
                   "int f(int a) { while (a > 0) { a = a - 1; } }"),
               Error);
}

TEST(MiniC, ErrorOnUnreachableCode) {
  EXPECT_THROW((void)parseMiniC(R"(
    int f(int a) {
      return a;
      a = a + 1;
    }
  )"),
               Error);
}

TEST(MiniC, ErrorOnUnknownFunctionCall) {
  EXPECT_THROW((void)parseMiniC("int f(int a) { return foo(a); }"), Error);
}

TEST(MiniC, BothBranchesReturningIsFine) {
  const MiniCFunction fn = parseMiniC(R"(
    int sign(int a) {
      if (a < 0) { return 0 - 1; } else {
        if (a > 0) { return 1; } else { return 0; }
      }
    }
  )");
  EXPECT_EQ(interpret(fn, {-5}), -1);
  EXPECT_EQ(interpret(fn, {5}), 1);
  EXPECT_EQ(interpret(fn, {0}), 0);
}

TEST(MiniC, ForLoopSugar) {
  const MiniCFunction fn = parseMiniC(R"(
    int triangle(int n) {
      int acc = 0;
      for (int i = 1; i <= n; i = i + 1) {
        acc = acc + i;
      }
      return acc;
    }
  )");
  EXPECT_EQ(interpret(fn, {5}), 15);
  EXPECT_EQ(interpret(fn, {0}), 0);
}

TEST(MiniC, ForLoopWithExistingVariable) {
  const MiniCFunction fn = parseMiniC(R"(
    int f(int n) {
      int i = 0;
      int acc = 0;
      for (i = n; i > 0; i = i - 2) { acc = acc + i; }
      return acc;
    }
  )");
  EXPECT_EQ(interpret(fn, {6}), 6 + 4 + 2);
}

TEST(MiniC, LogicalAndOrNot) {
  const MiniCFunction fn = parseMiniC(R"(
    int inrange(int x, int lo, int hi) {
      if (x >= lo && x <= hi) { return 1; }
      if (x < lo || x > hi) { return 0 - 1; }
      return 0;
    }
  )");
  EXPECT_EQ(interpret(fn, {5, 0, 10}), 1);
  EXPECT_EQ(interpret(fn, {-3, 0, 10}), -1);
  EXPECT_EQ(interpret(fn, {42, 0, 10}), -1);

  const MiniCFunction notFn = parseMiniC(R"(
    int iszero(int x) {
      if (!x) { return 1; } else { return 0; }
    }
  )");
  EXPECT_EQ(interpret(notFn, {0}), 1);
  EXPECT_EQ(interpret(notFn, {7}), 0);
}

TEST(MiniC, LogicalOperatorsOnNonBooleanValues) {
  // && / || must normalize operands (5 && 2 == 1, not 5 & 2 == 0).
  const MiniCFunction fn = parseMiniC(R"(
    int f(int a, int b) { return a && b; }
  )");
  EXPECT_EQ(interpret(fn, {5, 2}), 1);
  EXPECT_EQ(interpret(fn, {5, 0}), 0);
  const MiniCFunction orFn = parseMiniC(R"(
    int f(int a, int b) { return a || b; }
  )");
  EXPECT_EQ(interpret(orFn, {4, 0}), 1);
  EXPECT_EQ(interpret(orFn, {0, 0}), 0);
}

TEST(MiniC, ForLoopCompilesAndSimulates) {
  const MiniCFunction fn = parseMiniC(R"(
    int poly_eval(int x) {
      int acc = 0;
      for (int i = 0; i < 4; i = i + 1) {
        acc = acc * x + i;
      }
      return acc;
    }
  )");
  const Machine machine = loadMachine("arch2");
  for (int64_t x : {0, 1, 3}) {
    EXPECT_EQ(execute(fn, machine, {x}), interpret(fn, {x}));
  }
}

// PR 4 input hardening: the MiniC parser recovers at statement boundaries
// and reports every syntax error with its location in one pass.
TEST(MiniC, PanicModeReportsMultipleDiagnostics) {
  try {
    (void)parseMiniC(R"(
      int f(int a) {
        int x = ;
        int y = a + ;
        return x + y;
      }
    )",
                     "bad.c");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.sourceName(), "bad.c");
    ASSERT_GE(e.diagnostics().size(), 2u) << e.what();
    for (const Diagnostic& d : e.diagnostics())
      EXPECT_TRUE(d.loc.valid()) << d.message;
    EXPECT_LT(e.diagnostics()[0].loc.line, e.diagnostics()[1].loc.line);
  }
}

TEST(MiniC, GarbageInputRejectedWithoutAbort) {
  for (const char* junk :
       {"", "int", "int f(", "int f() { return", "x = 1;",
        "int f() { while } ", "int f() { return 99999999999999999999; }"}) {
    EXPECT_THROW((void)parseMiniC(junk, "junk.c"), Error) << junk;
  }
}

}  // namespace
}  // namespace aviv
