#include "regalloc/regalloc.h"

#include <gtest/gtest.h>

#include "core/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

struct Compiled {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;
  RegAssignment regs;

  Compiled(const std::string& block, const std::string& machineName, int regsN,
           CodegenOptions options = {})
      : dag(loadBlock(block)),
        machine(loadMachine(machineName).withRegisterCount(regsN)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, options)),
        regs(allocateRegisters(core.graph, core.schedule)) {}
};

// Re-derives interference from the schedule and checks no two overlapping
// values share a register (the fundamental coloring property).
void expectNoClobber(const AssignedGraph& graph, const Schedule& schedule,
                     const RegAssignment& regs) {
  const auto cycles = schedule.cycles(graph.size());
  const auto lastUse = computeLastUse(graph, cycles);
  DynBitset liveOut(graph.size());
  for (const auto& [name, def] : graph.outputDefs())
    if (def != kNoAg) liveOut.set(def);
  const int end = 2 * schedule.numInstructions() + 2;

  for (AgId a = 0; a < graph.size(); ++a) {
    if (!graph.node(a).definesRegister()) continue;
    for (AgId b = a + 1; b < graph.size(); ++b) {
      if (!graph.node(b).definesRegister()) continue;
      if (!(graph.node(a).defLoc == graph.node(b).defLoc)) continue;
      if (regs.regOf[a] != regs.regOf[b]) continue;
      const int beginA = 2 * cycles[a] + 1;
      const int endA = liveOut.test(a) ? end : 2 * lastUse[a];
      const int beginB = 2 * cycles[b] + 1;
      const int endB = liveOut.test(b) ? end : 2 * lastUse[b];
      EXPECT_FALSE(std::max(beginA, beginB) < std::min(endA, endB))
          << graph.describe(a) << " and " << graph.describe(b)
          << " share a register with overlapping lifetimes";
    }
  }
}

TEST(RegAlloc, AllBlocksAllocateWithinLimits) {
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    for (int regsN : {2, 4}) {
      const Compiled c(block, "arch1", regsN);
      for (AgId id = 0; id < c.core.graph.size(); ++id) {
        const AgNode& n = c.core.graph.node(id);
        if (!n.definesRegister()) {
          EXPECT_EQ(c.regs.regOf[id], -1);
          continue;
        }
        EXPECT_GE(c.regs.regOf[id], 0) << c.core.graph.describe(id);
        EXPECT_LT(c.regs.regOf[id],
                  c.machine.regFile(n.defLoc.index).numRegs);
      }
      expectNoClobber(c.core.graph, c.core.schedule, c.regs);
    }
  }
}

TEST(RegAlloc, RegsUsedRespectsPressure) {
  const Compiled c("ex2", "arch1", 4);
  for (size_t bank = 0; bank < c.machine.regFiles().size(); ++bank) {
    EXPECT_LE(c.regs.regsUsedPerBank[bank],
              c.machine.regFile(static_cast<RegFileId>(bank)).numRegs);
  }
}

TEST(RegAlloc, SameCycleDeathAndDefMayShareRegister) {
  // With 2 registers, long serial chains must reuse registers; verify reuse
  // actually happens (used count stays at the bank limit, not above).
  const Compiled c("ex1", "arch1", 2);
  for (size_t bank = 0; bank < c.machine.regFiles().size(); ++bank)
    EXPECT_LE(c.regs.regsUsedPerBank[bank], 2);
  expectNoClobber(c.core.graph, c.core.schedule, c.regs);
}

TEST(RegAlloc, ComputeLastUseMatchesSuccessorCycles) {
  const Compiled c("ex1", "arch1", 4);
  const auto cycles = c.core.schedule.cycles(c.core.graph.size());
  const auto lastUse = computeLastUse(c.core.graph, cycles);
  for (AgId id = 0; id < c.core.graph.size(); ++id) {
    if (c.core.graph.node(id).deleted()) continue;
    int expected = -1;
    for (AgId succ : c.core.graph.node(id).succs)
      expected = std::max(expected, cycles[succ]);
    EXPECT_EQ(lastUse[id], expected);
  }
}

TEST(RegAlloc, SpilledBlocksStillColor) {
  const Compiled c("ex4", "arch1", 2);
  EXPECT_GT(c.core.stats.cover.spillsInserted, 0);
  expectNoClobber(c.core.graph, c.core.schedule, c.regs);
}

}  // namespace
}  // namespace aviv
