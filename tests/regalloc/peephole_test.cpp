#include "regalloc/peephole.h"

#include <gtest/gtest.h>

#include "core/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "regalloc/regalloc.h"

namespace aviv {
namespace {

struct PeepholeFixture {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;

  PeepholeFixture(const std::string& block, int regsN, CodegenOptions options = {})
      : dag(loadBlock(block)),
        machine(loadMachine("arch1").withRegisterCount(regsN)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, options)) {}
};

TEST(Peephole, NeverIncreasesInstructionCount) {
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    for (int regsN : {2, 4}) {
      PeepholeFixture s(block, regsN);
      const int before = s.core.schedule.numInstructions();
      PeepholeStats stats;
      peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints,
                       &stats);
      EXPECT_LE(s.core.schedule.numInstructions(), before)
          << block << " r" << regsN;
      EXPECT_EQ(stats.instructionsSaved,
                before - s.core.schedule.numInstructions());
    }
  }
}

TEST(Peephole, ResultStillValidAndColorable) {
  for (const char* block : {"ex4", "ex5"}) {
    PeepholeFixture s(block, 2);
    peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints);
    // verifySchedule runs inside peepholeOptimize; coloring must also work.
    const RegAssignment regs =
        allocateRegisters(s.core.graph, s.core.schedule);
    for (AgId id = 0; id < s.core.graph.size(); ++id) {
      if (s.core.graph.node(id).definesRegister()) {
        EXPECT_GE(regs.regOf[id], 0);
      }
    }
  }
}

TEST(Peephole, NoSpillsMeansNoSpillRemoval) {
  PeepholeFixture s("ex2", 4);
  ASSERT_EQ(s.core.stats.cover.spillsInserted, 0);
  PeepholeStats stats;
  peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints, &stats);
  EXPECT_EQ(stats.reloadsRemoved, 0);
  EXPECT_EQ(stats.spillStoresRemoved, 0);
}

TEST(Peephole, IdempotentOnSecondRun) {
  PeepholeFixture s("ex4", 2);
  peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints);
  const int afterFirst = s.core.schedule.numInstructions();
  PeepholeStats second;
  peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints, &second);
  EXPECT_EQ(s.core.schedule.numInstructions(), afterFirst);
  EXPECT_EQ(second.opsHoisted, 0);
}

TEST(Peephole, CompactionFillsEmptySlots) {
  // Construct a schedule with an artificial gap: compile, then split one
  // instruction into two and let compaction re-merge them.
  PeepholeFixture s("ex1", 4);
  Schedule& schedule = s.core.schedule;
  // Find an instruction with >= 2 members and split it.
  for (size_t c = 0; c < schedule.instrs.size(); ++c) {
    if (schedule.instrs[c].size() >= 2) {
      std::vector<AgId> moved{schedule.instrs[c].back()};
      schedule.instrs[c].pop_back();
      schedule.instrs.insert(schedule.instrs.begin() +
                                 static_cast<long>(c) + 1,
                             std::move(moved));
      break;
    }
  }
  const int padded = schedule.numInstructions();
  PeepholeStats stats;
  peepholeOptimize(s.core.graph, schedule, s.dbs.constraints, &stats);
  EXPECT_LT(schedule.numInstructions(), padded);
  EXPECT_GT(stats.opsHoisted, 0);
}

TEST(Peephole, HeavySpillBlocksShrinkViaCoalescing) {
  // ex4/ex5 at 2 registers generate per-consumer reloads; the coalescing
  // and dead-reload phases must keep the result valid and never larger.
  for (const char* block : {"ex4", "ex5"}) {
    PeepholeFixture s(block, 2);
    const int before = s.core.schedule.numInstructions();
    PeepholeStats stats;
    peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints,
                     &stats);
    EXPECT_LE(s.core.schedule.numInstructions(), before) << block;
    // verifySchedule ran inside; also re-color to prove feasibility.
    (void)allocateRegisters(s.core.graph, s.core.schedule);
  }
}

TEST(Peephole, OutputStoresNeverDeleted) {
  // Memory-writing transfers have no successors by design; the dead-
  // transfer phase must not touch them.
  CodegenOptions options;
  options.outputsToMemory = true;
  PeepholeFixture s("ex1", 4, options);
  int storesBefore = 0;
  for (AgId id = 0; id < s.core.graph.size(); ++id) {
    const AgNode& n = s.core.graph.node(id);
    if (n.isTransferish() && !n.deleted() && n.defLoc.isMemory())
      ++storesBefore;
  }
  ASSERT_GT(storesBefore, 0);
  peepholeOptimize(s.core.graph, s.core.schedule, s.dbs.constraints);
  int storesAfter = 0;
  for (AgId id = 0; id < s.core.graph.size(); ++id) {
    const AgNode& n = s.core.graph.node(id);
    if (n.isTransferish() && !n.deleted() && n.defLoc.isMemory())
      ++storesAfter;
  }
  EXPECT_EQ(storesAfter, storesBefore);
}

}  // namespace
}  // namespace aviv
