// Fuzz corpus seed: MiniC with while, if/else, and compound expressions.
int blend(int a, int b, int n) {
  int acc = 0;
  while (n > 0) {
    if (a > b) { acc = acc + (a - b); } else { acc = acc + (b - a) * 2; }
    n = n - 1;
  }
  return acc + a % 3;
}
