// Property suite for the generative fuzzers (src/fuzz/genmachine,
// genblock): across >= 100 seeds, every generated machine must validate,
// round-trip through the ISDL emitter/parser, and be fully connected; every
// generated block must parse back and compile on the baseline engine. This
// is the "no false alarms" guarantee — a fuzz failure always indicts the
// engines, never the generator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/codegen.h"
#include "fuzz/genblock.h"
#include "fuzz/genmachine.h"
#include "ir/emit.h"
#include "ir/parser.h"
#include "isdl/databases.h"
#include "isdl/emit.h"
#include "isdl/parser.h"
#include "support/error.h"

namespace aviv {
namespace {

constexpr int kSeedsPerFamily = 17;  // 6 families x 17 = 102 >= 100

std::vector<MachineGenSpec> allSpecs() {
  std::vector<MachineGenSpec> specs;
  for (int f = 0; f < kNumMachineFamilies; ++f)
    for (int s = 1; s <= kSeedsPerFamily; ++s)
      specs.push_back({static_cast<MachineFamily>(f),
                       static_cast<uint64_t>(s) * 7919});
  return specs;
}

TEST(GenMachine, FamilyNamesRoundTrip) {
  for (int f = 0; f < kNumMachineFamilies; ++f) {
    const MachineFamily family = static_cast<MachineFamily>(f);
    EXPECT_EQ(familyFromName(familyName(family)), family);
  }
  EXPECT_THROW(familyFromName("vliw9000"), Error);
}

TEST(GenMachine, DeterministicInSpec) {
  for (int f = 0; f < kNumMachineFamilies; ++f) {
    const MachineGenSpec spec{static_cast<MachineFamily>(f), 12345};
    EXPECT_EQ(emitMachineText(generateMachine(spec)),
              emitMachineText(generateMachine(spec)));
  }
}

TEST(GenMachine, EveryMachineValidatesRoundTripsAndConnects) {
  for (const MachineGenSpec& spec : allSpecs()) {
    SCOPED_TRACE(std::string(familyName(spec.family)) + " seed " +
                 std::to_string(spec.seed));
    const Machine machine = generateMachine(spec);
    EXPECT_NO_THROW(machine.validate());

    // Emitter round-trip: the parsed-back machine is structurally equal
    // (same emission) and valid.
    const std::string text = emitMachineText(machine);
    const Machine reparsed = parseMachine(text, "generated.isdl");
    EXPECT_NO_THROW(reparsed.validate());
    EXPECT_EQ(emitMachineText(reparsed), text);

    // Connectivity: every unit's bank reaches and is reached from the data
    // memory — the minimum the covering flow needs to load operands and
    // store results.
    const TransferDatabase transfers(machine);
    const Loc dm = machine.dataMemoryLoc();
    for (size_t u = 0; u < machine.units().size(); ++u) {
      const Loc bank = machine.unitLoc(static_cast<UnitId>(u));
      EXPECT_TRUE(transfers.reachable(dm, bank))
          << "DM cannot reach bank of unit " << u;
      EXPECT_TRUE(transfers.reachable(bank, dm))
          << "bank of unit " << u << " cannot reach DM";
    }
  }
}

TEST(GenBlock, DeterministicInSpec) {
  const Machine machine =
      generateMachine({MachineFamily::kWideVliw, 99});
  EXPECT_EQ(emitBlockText(generateBlock(machine, {424242, 3, 24})),
            emitBlockText(generateBlock(machine, {424242, 3, 24})));
}

TEST(GenBlock, EveryBlockParsesBackAndCompilesOnBaseline) {
  for (const MachineGenSpec& spec : allSpecs()) {
    SCOPED_TRACE(std::string(familyName(spec.family)) + " seed " +
                 std::to_string(spec.seed));
    const Machine machine = generateMachine(spec);
    const BlockDag dag = generateBlock(machine, {spec.seed ^ 0x5eed, 3, 24});
    EXPECT_GE(dag.outputs().size(), 1u);
    EXPECT_GE(dag.numOpNodes(), 1u);

    // Round-trip stability: emitting the (already round-tripped) DAG and
    // re-parsing changes nothing.
    const std::string text = emitBlockText(dag);
    EXPECT_EQ(emitBlockText(parseBlock(text)), text);

    // The baseline engine must compile every generated block: rejection
    // here would make every differential verdict on this pair vacuous.
    DriverOptions options;
    options.engine = Engine::kBaseline;
    options.baselineFallback = false;
    CodeGenerator generator(machine, options);
    const CompiledBlock block = generator.compileBlock(dag);
    EXPECT_GT(block.numInstructions(), 0);
  }
}

}  // namespace
}  // namespace aviv
