// Minimizer tests (src/fuzz/minimize): a planted failure shrinks
// monotonically — the size trajectory strictly decreases step by step —
// and the shrunken pair still reproduces the exact failure signature.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "fuzz/diff.h"
#include "fuzz/genblock.h"
#include "fuzz/genmachine.h"
#include "fuzz/minimize.h"
#include "support/error.h"
#include "support/failpoint.h"

namespace aviv {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::instance().clear(); }
  void TearDown() override { FailPoints::instance().clear(); }
};

// A wide-VLIW pair the baseline compiles cleanly: big enough that the
// minimizer has real work, and a substrate the planted fault can corrupt.
std::pair<Machine, BlockDag> passingWidePair() {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Machine machine = generateMachine({MachineFamily::kWideVliw, seed});
    BlockDag dag = generateBlock(machine, {seed ^ 0xf00d, 8, 24});
    if (runDifferential(machine, dag, {}).verdict == DiffVerdict::kPass)
      return {std::move(machine), std::move(dag)};
  }
  throw Error("no passing wide pair within 64 seeds");
}

TEST_F(MinimizeTest, StructuralSizeCountsEveryAxis) {
  const Machine machine = generateMachine({MachineFamily::kMinimal, 3});
  const BlockDag dag = generateBlock(machine, {5, 3, 12});
  const int size = structuralSize(machine, dag);
  // At least one op node, one output, one unit with one op, one regfile
  // with one register.
  EXPECT_GE(size, 5);
}

TEST_F(MinimizeTest, PlantedFailureShrinksMonotonicallyKeepingSignature) {
  const auto [machine, dag] = passingWidePair();
  const int originalSize = structuralSize(machine, dag);

  FailPoints::instance().configure("fuzz-engine-disagree");
  const DiffResult seed = runDifferential(machine, dag, {});
  ASSERT_EQ(seed.signature, "miscompile:baseline");

  const MinimizeResult min =
      minimizeFuzzCase(machine, dag, {}, seed.signature);

  // The signature is preserved verbatim, and re-running the harness on the
  // shrunken pair (failpoint still armed) reproduces it.
  EXPECT_EQ(min.signature, seed.signature);
  EXPECT_EQ(runDifferential(min.machine, min.dag, {}).signature,
            seed.signature);
  EXPECT_NO_THROW(min.machine.validate());

  // Monotone trajectory: starts at the original size, every accepted step
  // strictly decreases it, and the final entry is the minimized size.
  ASSERT_FALSE(min.stats.sizeTrajectory.empty());
  EXPECT_EQ(min.stats.sizeTrajectory.front(), originalSize);
  for (size_t i = 1; i < min.stats.sizeTrajectory.size(); ++i)
    EXPECT_LT(min.stats.sizeTrajectory[i], min.stats.sizeTrajectory[i - 1]);
  EXPECT_EQ(min.stats.sizeTrajectory.back(),
            structuralSize(min.machine, min.dag));
  EXPECT_LE(structuralSize(min.machine, min.dag), originalSize);
  EXPECT_EQ(static_cast<size_t>(min.stats.accepted) + 1,
            min.stats.sizeTrajectory.size());
  EXPECT_GE(min.stats.attempts, min.stats.accepted);

  // A wide machine carries far more structure than the corrupted-image
  // signature needs; minimization must make real progress, not a no-op.
  EXPECT_LT(structuralSize(min.machine, min.dag), originalSize);

  FailPoints::instance().clear();
}

TEST_F(MinimizeTest, MinimizationIsDeterministic) {
  const auto [machine, dag] = passingWidePair();
  FailPoints::instance().configure("fuzz-engine-disagree");
  const std::string signature =
      runDifferential(machine, dag, {}).signature;
  const MinimizeResult a = minimizeFuzzCase(machine, dag, {}, signature);
  const MinimizeResult b = minimizeFuzzCase(machine, dag, {}, signature);
  EXPECT_EQ(a.stats.sizeTrajectory, b.stats.sizeTrajectory);
  EXPECT_EQ(structuralSize(a.machine, a.dag),
            structuralSize(b.machine, b.dag));
  FailPoints::instance().clear();
}

TEST_F(MinimizeTest, AttemptBudgetBoundsWork) {
  const auto [machine, dag] = passingWidePair();
  FailPoints::instance().configure("fuzz-engine-disagree");
  const std::string signature =
      runDifferential(machine, dag, {}).signature;
  MinimizeOptions options;
  options.maxAttempts = 5;
  const MinimizeResult min =
      minimizeFuzzCase(machine, dag, {}, signature, options);
  EXPECT_LE(min.stats.attempts, 5);
  // Even a truncated run returns a valid pair with the signature intact.
  EXPECT_EQ(runDifferential(min.machine, min.dag, {}).signature, signature);
  FailPoints::instance().clear();
}

}  // namespace
}  // namespace aviv
