// Differential harness tests (src/fuzz/diff + repro): clean pairs pass,
// verdicts are deterministic, and the planted `fuzz-engine-disagree`
// failpoint drives the full failure path end to end — miscompile verdict,
// src/verify quarantine artifact, standalone repro bundle, replay.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "fuzz/diff.h"
#include "fuzz/genblock.h"
#include "fuzz/genmachine.h"
#include "fuzz/repro.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "verify/quarantine.h"

namespace aviv {
namespace {

// Clears the failpoint registry around each test so a planted fault never
// leaks into a neighbour.
class DiffTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::instance().clear(); }
  void TearDown() override { FailPoints::instance().clear(); }
};

// Scans seeds for a pair both engines compile and verify cleanly (kPass);
// such a pair is also the substrate for the planted-fault tests, which
// need the baseline to produce an image that can be corrupted.
std::pair<Machine, BlockDag> passingPair(MachineFamily family) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Machine machine = generateMachine({family, seed});
    BlockDag dag = generateBlock(machine, {seed ^ 0xf00d, 3, 12});
    if (runDifferential(machine, dag, {}).verdict == DiffVerdict::kPass)
      return {std::move(machine), std::move(dag)};
  }
  throw Error("no passing pair within 64 seeds");
}

TEST_F(DiffTest, VerdictNamesAndFailurePredicate) {
  EXPECT_STREQ(verdictName(DiffVerdict::kPass), "pass");
  EXPECT_STREQ(verdictName(DiffVerdict::kMiscompile), "miscompile");
  EXPECT_FALSE(isFailureVerdict(DiffVerdict::kPass));
  EXPECT_FALSE(isFailureVerdict(DiffVerdict::kReject));
  EXPECT_TRUE(isFailureVerdict(DiffVerdict::kCrash));
  EXPECT_TRUE(isFailureVerdict(DiffVerdict::kEscape));
  EXPECT_TRUE(isFailureVerdict(DiffVerdict::kMiscompile));
}

TEST_F(DiffTest, CleanPairPassesAndIsDeterministic) {
  const auto [machine, dag] = passingPair(MachineFamily::kMinimal);
  const DiffResult first = runDifferential(machine, dag, {});
  const DiffResult second = runDifferential(machine, dag, {});
  EXPECT_EQ(first.verdict, DiffVerdict::kPass);
  EXPECT_EQ(first.signature, "pass");
  EXPECT_FALSE(first.plantedFault);
  EXPECT_TRUE(first.quarantinePath.empty());
  EXPECT_EQ(second.signature, first.signature);
  EXPECT_EQ(second.detail, first.detail);
}

TEST_F(DiffTest, PlantedFaultYieldsQuarantinedMiscompile) {
  const auto [machine, dag] = passingPair(MachineFamily::kMinimal);
  DiffOptions options;
  options.quarantineDir = ::testing::TempDir() + "diff_test_quarantine";

  FailPoints::instance().configure("fuzz-engine-disagree");
  const DiffResult result = runDifferential(machine, dag, options);
  FailPoints::instance().clear();

  EXPECT_EQ(result.verdict, DiffVerdict::kMiscompile);
  EXPECT_EQ(result.signature, "miscompile:baseline");
  EXPECT_TRUE(result.plantedFault);
  EXPECT_TRUE(result.baseline.verifyFailed);
  EXPECT_FALSE(result.heuristic.verifyFailed);

  // The miscompile quarantined a standard src/verify artifact, and the
  // existing replay tooling reproduces the mismatch from the files alone.
  ASSERT_FALSE(result.quarantinePath.empty());
  const ReplayResult replay = replayQuarantineArtifact(result.quarantinePath);
  EXPECT_TRUE(replay.reproduced);
}

TEST_F(DiffTest, ReproBundleRoundTripsAndReplays) {
  const auto [machine, dag] = passingPair(MachineFamily::kMinimal);
  DiffOptions options;
  options.vectors = 3;

  FailPoints::instance().configure("fuzz-engine-disagree");
  const DiffResult result = runDifferential(machine, dag, options);
  FailPoints::instance().clear();
  ASSERT_EQ(result.signature, "miscompile:baseline");

  FuzzCase info;
  info.family = MachineFamily::kMinimal;
  info.machineSeed = 1;
  info.blockSeed = 2;
  info.iteration = 7;
  info.failpoints = "fuzz-engine-disagree";  // always-fire replay spec
  const std::string dir =
      writeFuzzRepro(::testing::TempDir() + "diff_test_repros", machine, dag,
                     info, options, result);

  const FuzzRepro repro = loadFuzzRepro(dir);
  EXPECT_EQ(repro.machine.name(), machine.name());
  EXPECT_EQ(repro.info.family, info.family);
  EXPECT_EQ(repro.info.machineSeed, info.machineSeed);
  EXPECT_EQ(repro.info.blockSeed, info.blockSeed);
  EXPECT_EQ(repro.info.iteration, info.iteration);
  EXPECT_EQ(repro.info.failpoints, info.failpoints);
  EXPECT_EQ(repro.options.vectors, options.vectors);
  EXPECT_EQ(repro.signature, result.signature);

  // The bundle is the bug report: replay needs nothing from this process.
  const FuzzReplayResult replay = replayFuzzRepro(dir);
  EXPECT_TRUE(replay.reproduced);
  EXPECT_EQ(replay.result.signature, result.signature);
}

TEST_F(DiffTest, LoadMissingBundleThrows) {
  EXPECT_THROW((void)loadFuzzRepro(::testing::TempDir() + "no_such_bundle"),
               Error);
}

}  // namespace
}  // namespace aviv
