// Fault-injection tests for the result cache's disk tier: torn writes,
// rename failures, transient read/write errors with retry, stale temp-file
// sweeping, and manifest recovery. Faults come from the FailPoints registry
// (support/failpoint.h); every scenario must end with the cache healthy and
// the process alive — the cache never fails a compile.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "service/cache.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/hash.h"
#include "support/io.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

class CacheFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("aviv_fault_test_") + info->name()))
               .string();
    fs::remove_all(dir_);
    FailPoints::instance().clear();
  }
  void TearDown() override {
    // The registry is process-global: a leaked fail point would inject
    // faults into unrelated tests in this binary.
    FailPoints::instance().clear();
    fs::remove_all(dir_);
  }

  [[nodiscard]] CacheConfig diskOnlyConfig() const {
    CacheConfig config;
    config.dir = dir_;
    config.memoryEntries = 0;  // force every lookup to the disk tier
    config.retryBackoffMs = 0.0;  // keep the tests fast
    return config;
  }

  std::string dir_;
};

Hash128 makeKey(uint64_t i) { return Hasher().str("fault").u64(i).digest(); }

CacheEntry makeEntry(uint64_t i) {
  CacheEntry entry;
  entry.blockName = "block" + std::to_string(i);
  entry.machineName = "mach";
  entry.symbolNames = {"x"};
  entry.image.blockName = entry.blockName;
  entry.image.machineName = entry.machineName;
  entry.image.spillBase = 8;
  return entry;
}

TEST_F(CacheFaultTest, TornWriteSelfHealsOnNextLookup) {
  ResultCache cache(diskOnlyConfig());
  FailPoints::instance().configure("cache-torn-write:1:1");
  cache.store(makeKey(1), makeEntry(1));
  ASSERT_TRUE(fs::exists(cache.entryPath(makeKey(1))))
      << "the torn entry still reaches its final path";

  // The framing (payload size + checksum) catches the truncation: corrupt,
  // removed, miss — then a rewrite restores a servable entry.
  EXPECT_EQ(cache.lookup(makeKey(1)), nullptr);
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_FALSE(fs::exists(cache.entryPath(makeKey(1))));
  cache.store(makeKey(1), makeEntry(1));
  EXPECT_NE(cache.lookup(makeKey(1)), nullptr);
}

TEST_F(CacheFaultTest, RenameFailureCleansUpTempAndCounts) {
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 0;  // no retries: the injected failure must stick
  ResultCache cache(config);
  FailPoints::instance().configure("cache-rename:1:1");
  cache.store(makeKey(2), makeEntry(2));

  EXPECT_EQ(cache.stats().writeErrors, 1);
  EXPECT_FALSE(fs::exists(cache.entryPath(makeKey(2))));
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(dir_) / "objects"))
    EXPECT_FALSE(entry.is_regular_file()) << "temp file left behind: "
                                          << entry.path();
  // The entry is simply uncached; a later store succeeds.
  cache.store(makeKey(2), makeEntry(2));
  EXPECT_NE(cache.lookup(makeKey(2)), nullptr);
}

TEST_F(CacheFaultTest, TransientWriteFailureIsRetriedToSuccess) {
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 2;
  ResultCache cache(config);
  // Two injected failures, two retries: the third attempt lands the entry.
  FailPoints::instance().configure("cache-write:1:2");
  cache.store(makeKey(3), makeEntry(3));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.ioRetries, 2);
  EXPECT_EQ(stats.writeErrors, 0);
  EXPECT_NE(cache.lookup(makeKey(3)), nullptr);
}

TEST_F(CacheFaultTest, ExhaustedWriteRetriesCountAsWriteError) {
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 1;
  ResultCache cache(config);
  FailPoints::instance().configure("cache-write");  // always fails
  cache.store(makeKey(4), makeEntry(4));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.ioRetries, 1);
  EXPECT_EQ(stats.writeErrors, 1);
  EXPECT_EQ(cache.lookup(makeKey(4)), nullptr);
}

TEST_F(CacheFaultTest, TransientReadFailureIsMissNotCorrupt) {
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 0;
  ResultCache cache(config);
  cache.store(makeKey(5), makeEntry(5));
  FailPoints::instance().configure("cache-read:1:1");

  // The read failed, the entry's health is unknown: miss, keep the file.
  EXPECT_EQ(cache.lookup(makeKey(5)), nullptr);
  EXPECT_EQ(cache.stats().corrupt, 0);
  EXPECT_TRUE(fs::exists(cache.entryPath(makeKey(5))));
  // The fault was transient: the next lookup serves the entry.
  EXPECT_NE(cache.lookup(makeKey(5)), nullptr);
}

TEST_F(CacheFaultTest, TransientReadFailureIsRetriedWithinOneLookup) {
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 2;
  ResultCache cache(config);
  cache.store(makeKey(6), makeEntry(6));
  FailPoints::instance().configure("cache-read:1:2");

  EXPECT_NE(cache.lookup(makeKey(6)), nullptr);
  EXPECT_EQ(cache.stats().ioRetries, 2);
}

TEST_F(CacheFaultTest, SerializeFailureLeavesEntryUncached) {
  ResultCache cache(diskOnlyConfig());
  FailPoints::instance().configure("cache-serialize:1:1");
  cache.store(makeKey(7), makeEntry(7));
  EXPECT_EQ(cache.stats().writeErrors, 1);
  EXPECT_EQ(cache.lookup(makeKey(7)), nullptr);
}

TEST_F(CacheFaultTest, StartupSweepsStaleTempFiles) {
  const Hash128 key = makeKey(8);
  std::string entryPath;
  {
    ResultCache writer(diskOnlyConfig());
    writer.store(key, makeEntry(8));
    entryPath = writer.entryPath(key);
  }
  // Simulate writers killed between writeFile and rename.
  const fs::path parent = fs::path(entryPath).parent_path();
  writeFile((parent / "deadbeef.avivce.tmp0").string(), "partial");
  writeFile((parent / "deadbeef.avivce.tmp17").string(), "partial");

  ResultCache cache(diskOnlyConfig());
  EXPECT_EQ(cache.stats().tmpSwept, 2);
  EXPECT_FALSE(fs::exists(parent / "deadbeef.avivce.tmp0"));
  EXPECT_FALSE(fs::exists(parent / "deadbeef.avivce.tmp17"));
  EXPECT_NE(cache.lookup(key), nullptr) << "real entries survive the sweep";
}

TEST_F(CacheFaultTest, CorruptManifestIsRewrittenOnStartup) {
  { ResultCache writer(diskOnlyConfig()); }
  const fs::path manifest = fs::path(dir_) / "manifest.json";
  ASSERT_TRUE(fs::exists(manifest));
  writeFile(manifest.string(), "{ not json \x01\x02");

  { ResultCache reopened(diskOnlyConfig()); }
  const std::string text = readFile(manifest.string());
  EXPECT_NE(text.find("aviv-result-cache"), std::string::npos);
  EXPECT_NE(text.find("entryFormatVersion"), std::string::npos);
}

TEST_F(CacheFaultTest, FlushManifestRestoresDeletedManifest) {
  ResultCache cache(diskOnlyConfig());
  const fs::path manifest = fs::path(dir_) / "manifest.json";
  fs::remove(manifest);
  cache.flushManifest();
  EXPECT_TRUE(fs::exists(manifest));
}

TEST_F(CacheFaultTest, ManifestWriteFaultDoesNotFailConstruction) {
  FailPoints::instance().configure("cache-manifest");
  CacheConfig config = diskOnlyConfig();
  config.ioRetries = 0;
  ResultCache cache(config);  // must not throw
  EXPECT_GE(cache.stats().writeErrors, 1);
  // The store still works without its manifest.
  FailPoints::instance().clear();
  cache.store(makeKey(9), makeEntry(9));
  EXPECT_NE(cache.lookup(makeKey(9)), nullptr);
}

}  // namespace
}  // namespace aviv
