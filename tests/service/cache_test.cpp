// ResultCache unit tests: entry codec round-trips, memory-tier LRU
// behavior, disk persistence across instances, and — the robustness
// acceptance criterion — corrupt on-disk entries (flipped bytes, truncation,
// garbage, stale format) being detected, counted, removed, and rewritten
// without ever surfacing a stale result. The concurrency test runs the
// shared cache from pool workers and is part of the TSan CI job.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "service/cache.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/io.h"
#include "support/serial.h"
#include "support/thread_pool.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

// Per-test scratch directory (ctest runs tests as separate processes that
// may overlap, so the name must be unique per test).
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("aviv_cache_test_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

Hash128 makeKey(uint64_t i) { return Hasher().str("key").u64(i).digest(); }

// An entry exercising every serialized field.
CacheEntry makeEntry(uint64_t i) {
  CacheEntry entry;
  entry.blockName = "block" + std::to_string(i);
  entry.machineName = "mach";
  entry.symbolNames = {"x", "y", "spill#0"};
  entry.statsJson = "{\"name\": \"block:block" + std::to_string(i) + "\"}";

  CodeImage& image = entry.image;
  image.blockName = entry.blockName;
  image.machineName = entry.machineName;
  image.spillBase = 16;
  image.numSpillSlots = 2;
  image.constPool = {{16, 42}, {17, static_cast<int64_t>(i)}};

  OutputBinding out;
  out.name = "y";
  out.inMemory = true;
  out.loc = Loc::memory(0);
  out.memAddr = -2;  // provisional ordinal 0
  image.outputs.push_back(out);

  EncInstr instr;
  EncOp op;
  op.unit = 1;
  op.op = Op::kAdd;
  op.mnemonic = "add";
  op.dstReg = 2;
  op.srcs = {EncOperand{false, 0, 0}, EncOperand{true, -1, 7}};
  instr.ops.push_back(op);
  EncXfer xfer;
  xfer.bus = 0;
  xfer.from = Loc::memory(0);
  xfer.to = Loc::regFile(0);
  xfer.srcReg = -1;
  xfer.dstReg = 0;
  xfer.memAddr = -3;  // provisional ordinal 1
  xfer.comment = "load y";
  instr.xfers.push_back(xfer);
  image.instrs.push_back(instr);
  return entry;
}

TEST_F(CacheTest, EntryCodecRoundTrips) {
  const CacheEntry original = makeEntry(7);
  const CacheEntry decoded = deserializeCacheEntry(serializeCacheEntry(original));
  EXPECT_EQ(decoded.blockName, original.blockName);
  EXPECT_EQ(decoded.machineName, original.machineName);
  EXPECT_EQ(decoded.symbolNames, original.symbolNames);
  EXPECT_EQ(decoded.statsJson, original.statsJson);
  EXPECT_EQ(decoded.image.constPool, original.image.constPool);
  EXPECT_EQ(decoded.image.instrs.size(), original.image.instrs.size());
  // Field-by-field equality in one shot: identical re-serialization.
  EXPECT_EQ(serializeCacheEntry(decoded), serializeCacheEntry(original));
}

TEST_F(CacheTest, CodecRejectsEveryTruncation) {
  const std::string full = serializeCacheEntry(makeEntry(1));
  for (size_t cut = 0; cut < full.size(); ++cut)
    EXPECT_THROW((void)deserializeCacheEntry(
                     std::string_view(full).substr(0, cut)),
                 Error)
        << "cut at " << cut;
}

TEST_F(CacheTest, CodecRejectsTrailingBytes) {
  std::string padded = serializeCacheEntry(makeEntry(1));
  padded.push_back('\0');
  EXPECT_THROW((void)deserializeCacheEntry(padded), Error);
}

TEST_F(CacheTest, MemoryTierEvictsLeastRecentlyUsed) {
  CacheConfig config;
  config.memoryEntries = 2;
  config.shards = 1;  // one shard so capacity is exactly 2 entries
  ResultCache cache(config);
  cache.store(makeKey(1), makeEntry(1));
  cache.store(makeKey(2), makeEntry(2));
  cache.store(makeKey(3), makeEntry(3));  // evicts key 1

  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.lookup(makeKey(1)), nullptr);
  ASSERT_NE(cache.lookup(makeKey(2)), nullptr);
  ASSERT_NE(cache.lookup(makeKey(3)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.memoryHits, 2);
  EXPECT_EQ(stats.misses, 1);
}

TEST_F(CacheTest, LookupRefreshesLruOrder) {
  CacheConfig config;
  config.memoryEntries = 2;
  config.shards = 1;
  ResultCache cache(config);
  cache.store(makeKey(1), makeEntry(1));
  cache.store(makeKey(2), makeEntry(2));
  ASSERT_NE(cache.lookup(makeKey(1)), nullptr);  // 1 is now hottest
  cache.store(makeKey(3), makeEntry(3));         // evicts 2, not 1
  EXPECT_NE(cache.lookup(makeKey(1)), nullptr);
  EXPECT_EQ(cache.lookup(makeKey(2)), nullptr);
}

TEST_F(CacheTest, DiskTierPersistsAcrossInstances) {
  CacheConfig config;
  config.dir = dir_;
  const CacheEntry original = makeEntry(5);
  {
    ResultCache writer(config);
    writer.store(makeKey(5), original);
  }
  ResultCache reader(config);  // fresh instance: memory tier is empty
  const auto entry = reader.lookup(makeKey(5));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(serializeCacheEntry(*entry), serializeCacheEntry(original));
  EXPECT_EQ(reader.stats().diskHits, 1);
  // The disk hit repopulated the memory tier.
  ASSERT_NE(reader.lookup(makeKey(5)), nullptr);
  EXPECT_EQ(reader.stats().memoryHits, 1);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "manifest.json"));
}

TEST_F(CacheTest, ZeroMemoryEntriesDisablesTierOne) {
  CacheConfig config;
  config.dir = dir_;
  config.memoryEntries = 0;
  ResultCache cache(config);
  cache.store(makeKey(1), makeEntry(1));
  ASSERT_NE(cache.lookup(makeKey(1)), nullptr);
  ASSERT_NE(cache.lookup(makeKey(1)), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.memoryHits, 0);
  EXPECT_EQ(stats.diskHits, 2);
}

// One corruption scenario end to end: mutate the stored file, assert the
// lookup reports corrupt + miss and removes the file, then assert a rewrite
// restores a valid entry.
void expectSelfHealing(const std::string& dir,
                       void (*mutate)(const std::string& path)) {
  CacheConfig config;
  config.dir = dir;
  config.memoryEntries = 0;  // force every lookup to the disk tier
  const Hash128 key = makeKey(9);
  {
    ResultCache writer(config);
    writer.store(key, makeEntry(9));
    mutate(writer.entryPath(key));
  }
  ResultCache cache(config);
  EXPECT_EQ(cache.lookup(key), nullptr);
  const CacheStats afterCorrupt = cache.stats();
  EXPECT_EQ(afterCorrupt.corrupt, 1);
  EXPECT_EQ(afterCorrupt.misses, 1);
  EXPECT_FALSE(fs::exists(cache.entryPath(key)))
      << "corrupt file must be removed";

  // The caller recompiles and rewrites; the rewritten entry must be valid.
  cache.store(key, makeEntry(9));
  const auto entry = cache.lookup(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(serializeCacheEntry(*entry), serializeCacheEntry(makeEntry(9)));
  EXPECT_EQ(cache.stats().corrupt, 1) << "valid rewrite must not re-count";
}

TEST_F(CacheTest, FlippedPayloadByteIsCorrupt) {
  expectSelfHealing(dir_, [](const std::string& path) {
    std::string bytes = readFile(path);
    bytes[bytes.size() / 2] ^= 0x01;
    writeFile(path, bytes);
  });
}

TEST_F(CacheTest, TruncatedFileIsCorrupt) {
  expectSelfHealing(dir_, [](const std::string& path) {
    const std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() / 2));
  });
}

TEST_F(CacheTest, GarbageFileIsCorrupt) {
  expectSelfHealing(dir_, [](const std::string& path) {
    writeFile(path, "this is not a cache entry");
  });
}

TEST_F(CacheTest, StaleFormatVersionIsCorrupt) {
  expectSelfHealing(dir_, [](const std::string& path) {
    // Rewrite the framing with a future format version but an otherwise
    // self-consistent payload: the version check alone must reject it.
    std::string bytes = readFile(path);
    ByteWriter w;
    w.u32(0x45435641u);  // magic "AVCE"
    w.u32(ResultCache::kEntryFormatVersion + 1);
    bytes.replace(0, w.buffer().size(), w.buffer());
    writeFile(path, bytes);
  });
}

TEST_F(CacheTest, WrongKeyInFramingIsCorrupt) {
  // A file renamed to the wrong content address must not be served.
  CacheConfig config;
  config.dir = dir_;
  config.memoryEntries = 0;
  ResultCache cache(config);
  cache.store(makeKey(1), makeEntry(1));
  const std::string wrongPath = cache.entryPath(makeKey(2));
  fs::create_directories(fs::path(wrongPath).parent_path());
  fs::rename(cache.entryPath(makeKey(1)), wrongPath);
  EXPECT_EQ(cache.lookup(makeKey(2)), nullptr);
  EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(CacheTest, ConcurrentStoresAndLookupsAreSafe) {
  CacheConfig config;
  config.dir = dir_;
  config.memoryEntries = 8;  // small: force evictions under contention
  config.shards = 4;
  ResultCache cache(config);

  constexpr size_t kOps = 256;
  constexpr uint64_t kKeys = 16;
  ThreadPool pool(4);
  pool.parallelFor(kOps, [&](size_t i, int) {
    const uint64_t k = i % kKeys;
    if (i % 3 == 0) {
      cache.store(makeKey(k), makeEntry(k));
    } else if (const auto entry = cache.lookup(makeKey(k))) {
      // Entries are immutable; a hit must always decode to the stored value.
      EXPECT_EQ(entry->blockName, "block" + std::to_string(k));
    }
  });

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_EQ(stats.corrupt, 0);
  EXPECT_GE(stats.stores, static_cast<int64_t>(kKeys));
  // gcd(3, kKeys) = 1, so the store branch reached every key; after the
  // storm each one must be durably readable from disk.
  ResultCache verify(config);
  for (uint64_t k = 0; k < kKeys; ++k)
    EXPECT_NE(verify.lookup(makeKey(k)), nullptr) << "key " << k;
}

}  // namespace
}  // namespace aviv
