// Unit tests for the shared avivd request grammar (service/request.h):
// token semantics, defaults and overrides, and located diagnostics — every
// malformed line must report the 1-based line number it came from and the
// 1-based column of the token that failed.
#include "service/request.h"

#include <gtest/gtest.h>

#include <string>

#include "support/telemetry.h"

namespace aviv {
namespace {

RequestDefaults defaults() { return RequestDefaults{}; }

TEST(Request, ParsesMinimalLine) {
  const RequestParse parse =
      parseRequestLine("machine=arch1 block=ex1", 3, defaults());
  ASSERT_TRUE(parse.ok());
  EXPECT_EQ(parse.request->line, 3);
  EXPECT_EQ(parse.request->machineSpec, "arch1");
  EXPECT_EQ(parse.request->blockSpec, "ex1");
  EXPECT_EQ(parse.request->regsOverride, 0);
  // Daemon parallelism is across requests, never within one.
  EXPECT_EQ(parse.request->options.core.jobs, 1);
}

TEST(Request, ParsesEveryToken) {
  const RequestParse parse = parseRequestLine(
      "machine=m.isdl block=b.blk heuristics=off const-pool outputs-mem "
      "no-peephole regs=16 timeout=2.5 verify=all",
      1, defaults());
  ASSERT_TRUE(parse.ok());
  const ParsedRequest& request = *parse.request;
  EXPECT_EQ(request.machineSpec, "m.isdl");
  EXPECT_EQ(request.blockSpec, "b.blk");
  EXPECT_TRUE(request.options.core.constantsInMemory);
  EXPECT_TRUE(request.options.core.outputsToMemory);
  EXPECT_FALSE(request.options.runPeephole);
  EXPECT_EQ(request.regsOverride, 16);
  EXPECT_DOUBLE_EQ(request.options.core.timeLimitSeconds, 2.5);
  EXPECT_EQ(request.options.verify.level, VerifyLevel::kAll);
}

TEST(Request, DefaultsApplyWhenTokensAbsent) {
  RequestDefaults d;
  d.timeoutSeconds = 7.0;
  d.verify.level = VerifyLevel::kSampled;
  const RequestParse parse =
      parseRequestLine("machine=arch1 block=ex1", 1, d);
  ASSERT_TRUE(parse.ok());
  EXPECT_DOUBLE_EQ(parse.request->options.core.timeLimitSeconds, 7.0);
  EXPECT_EQ(parse.request->options.verify.level, VerifyLevel::kSampled);
}

TEST(Request, TokensOverrideDefaults) {
  RequestDefaults d;
  d.timeoutSeconds = 7.0;
  d.verify.level = VerifyLevel::kAll;
  const RequestParse parse = parseRequestLine(
      "machine=arch1 block=ex1 timeout=0.25 verify=off", 1, d);
  ASSERT_TRUE(parse.ok());
  EXPECT_DOUBLE_EQ(parse.request->options.core.timeLimitSeconds, 0.25);
  EXPECT_EQ(parse.request->options.verify.level, VerifyLevel::kOff);
}

TEST(Request, TimeoutSurvivesHeuristicsToken) {
  // heuristics= swaps the whole CodegenOptions struct; timeout= and jobs
  // must survive regardless of token order.
  const RequestParse parse = parseRequestLine(
      "machine=arch1 block=ex1 timeout=1.5 heuristics=off", 1, defaults());
  ASSERT_TRUE(parse.ok());
  EXPECT_DOUBLE_EQ(parse.request->options.core.timeLimitSeconds, 1.5);
  EXPECT_EQ(parse.request->options.core.jobs, 1);
}

TEST(Request, CommentsAndTrailingTokensIgnored) {
  const RequestParse parse = parseRequestLine(
      "machine=arch1 block=ex1 # regs=999 nonsense after comment", 1,
      defaults());
  ASSERT_TRUE(parse.ok());
  EXPECT_EQ(parse.request->regsOverride, 0);
}

TEST(Request, UnknownTokenReportsLineAndColumn) {
  //                         1-based column of "bogus=1": 25
  const RequestParse parse = parseRequestLine(
      "machine=arch1 block=ex1 bogus=1", 7, defaults());
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.diagnostic.loc.line, 7u);
  EXPECT_EQ(parse.diagnostic.loc.column, 25u);
  EXPECT_NE(parse.diagnostic.message.find("unknown request token 'bogus=1'"),
            std::string::npos);
}

TEST(Request, MissingMachineOrBlockFails) {
  const RequestParse noBlock =
      parseRequestLine("machine=arch1", 2, defaults());
  ASSERT_FALSE(noBlock.ok());
  EXPECT_EQ(noBlock.diagnostic.loc.line, 2u);
  EXPECT_NE(noBlock.diagnostic.message.find("machine=... and block=..."),
            std::string::npos);
  EXPECT_FALSE(parseRequestLine("block=ex1", 1, defaults()).ok());
  EXPECT_FALSE(parseRequestLine("", 1, defaults()).ok());
}

TEST(Request, MalformedTimeoutLocated) {
  const RequestParse bad = parseRequestLine(
      "machine=arch1 block=ex1 timeout=fast", 4, defaults());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.diagnostic.loc.line, 4u);
  EXPECT_EQ(bad.diagnostic.loc.column, 25u);
  EXPECT_NE(bad.diagnostic.message.find("timeout expects seconds"),
            std::string::npos);
  const RequestParse negative = parseRequestLine(
      "machine=arch1 block=ex1 timeout=-1", 4, defaults());
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.diagnostic.message.find("timeout must be >= 0"),
            std::string::npos);
}

TEST(Request, MalformedVerifyAndHeuristicsAndRegs) {
  EXPECT_FALSE(parseRequestLine("machine=a block=b verify=maybe", 1,
                                defaults())
                   .ok());
  EXPECT_FALSE(parseRequestLine("machine=a block=b heuristics=fast", 1,
                                defaults())
                   .ok());
  EXPECT_FALSE(
      parseRequestLine("machine=a block=b regs=many", 1, defaults()).ok());
  const RequestParse outOfRange =
      parseRequestLine("machine=a block=b regs=9999", 1, defaults());
  ASSERT_FALSE(outOfRange.ok());
  EXPECT_NE(outOfRange.diagnostic.message.find("[1, 4096]"),
            std::string::npos);
}

TEST(Request, LeadingWhitespaceShiftsColumns) {
  const RequestParse parse =
      parseRequestLine("   machine=arch1 junk", 1, defaults());
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.diagnostic.loc.column, 18u);  // "junk" starts at column 18
}

TEST(Request, ExecuteCompilesAndReportsCacheState) {
  const RequestParse parse =
      parseRequestLine("machine=arch1 block=ex1", 1, defaults());
  ASSERT_TRUE(parse.ok());
  RequestExecConfig config;  // no cache
  TelemetryNode tel("test");
  const RequestOutcome outcome =
      executeRequest(*parse.request, config, tel);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.blocks, 1u);
  EXPECT_EQ(outcome.cachedBlocks, 0u);
  EXPECT_FALSE(outcome.allCached());
  EXPECT_NE(outcome.statusDetail.find("cache=off"), std::string::npos);
  EXPECT_TRUE(outcome.asmText.empty());  // wantAsm defaults off
}

TEST(Request, ExecuteWantAsmProducesAssembly) {
  const RequestParse parse =
      parseRequestLine("machine=arch1 block=ex1", 1, defaults());
  ASSERT_TRUE(parse.ok());
  RequestExecConfig config;
  config.wantAsm = true;
  TelemetryNode tel("test");
  const RequestOutcome outcome =
      executeRequest(*parse.request, config, tel);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.asmText.empty());
}

TEST(Request, ExecuteIsolatesFailuresIntoOutcome) {
  const RequestParse parse =
      parseRequestLine("machine=no_such_machine block=ex1", 1, defaults());
  ASSERT_TRUE(parse.ok());  // resolution happens at execute time
  RequestExecConfig config;
  TelemetryNode tel("test");
  const RequestOutcome outcome =
      executeRequest(*parse.request, config, tel);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

}  // namespace
}  // namespace aviv
