// The compilation service's end-to-end properties (DESIGN.md System 23),
// over every shipped block × machine pair so new data files are covered
// automatically:
//
//   * a cache-hit compile is bit-identical to a cold compile — same assembly
//     text, same instruction count, and stored phase stats identical (via
//     sameShapeAs, which ignores wall-clock) to what a cache-less compile
//     records;
//   * a cache populated at jobs=4 replays bit-identically at jobs=1 (the
//     fingerprint deliberately excludes the worker count);
//   * a hit performs ZERO covering work: the block's telemetry subtree
//     contains nothing but the cacheHits counter;
//   * failing compiles are never cached and fail identically on retry;
//   * corrupt on-disk entries degrade to a correct recompile that rewrites
//     a valid entry (driver-level view of the cache robustness tests).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "support/io.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> stemsWithExtension(const std::string& dir,
                                            const std::string& ext) {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ext)
      stems.push_back(entry.path().stem().string());
  std::sort(stems.begin(), stems.end());
  return stems;
}

// Everything observable about one standalone-block compile, plus the
// block's telemetry subtree (as JSON — TelemetryNode is move-only).
struct Outcome {
  bool ok = false;
  std::string error;
  std::string asmText;
  int instructions = 0;
  bool fromCache = false;
  std::string cachedStatsJson;
  std::string blockStatsJson;
};

Outcome compileWith(const BlockDag& dag, const Machine& machine, int jobs,
                    std::shared_ptr<ResultCache> cache) {
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.core.jobs = jobs;
  options.cache = std::move(cache);
  Outcome out;
  try {
    CodeGenerator generator(machine, options);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    out.ok = true;
    out.asmText = block.image.asmText(machine);
    out.instructions = block.numInstructions();
    out.fromCache = block.fromCache;
    out.cachedStatsJson = block.cachedStatsJson;
    const TelemetryNode* tel =
        generator.telemetry().findChild("block:" + dag.name());
    if (tel != nullptr) out.blockStatsJson = tel->toJson();
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

struct ServiceCase {
  std::string block;
  std::string machine;
};

class CacheReplay : public ::testing::TestWithParam<ServiceCase> {};

TEST_P(CacheReplay, HitIsBitIdenticalToColdCompile) {
  const BlockDag dag = loadBlock(GetParam().block);
  const Machine machine = loadMachine(GetParam().machine);

  // Cold baseline: no cache at all.
  const Outcome cold = compileWith(dag, machine, 1, nullptr);

  // Populate at jobs=4, replay at jobs=1 through a fresh generator sharing
  // the same (memory-only) cache.
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  const Outcome populate = compileWith(dag, machine, 4, cache);
  const Outcome hit = compileWith(dag, machine, 1, cache);

  EXPECT_EQ(populate.ok, cold.ok);
  EXPECT_EQ(populate.error, cold.error);
  if (!cold.ok) {
    // Failed compiles are never cached: the replay attempt recompiles and
    // fails with the same diagnostic instead of serving a stale result.
    EXPECT_FALSE(hit.ok);
    EXPECT_EQ(hit.error, cold.error);
    return;
  }

  EXPECT_FALSE(populate.fromCache);
  EXPECT_EQ(populate.asmText, cold.asmText);

  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.fromCache);
  EXPECT_EQ(hit.asmText, cold.asmText);
  EXPECT_EQ(hit.instructions, cold.instructions);

  // Zero covering work on a hit: the block subtree holds the cacheHits
  // counter and nothing else — no assignment/cover/regalloc/encode phases.
  const TelemetryNode hitTel = TelemetryNode::fromJson(hit.blockStatsJson);
  EXPECT_TRUE(hitTel.children().empty());
  EXPECT_EQ(hitTel.counters().size(), 1u);
  EXPECT_EQ(hitTel.counter("cacheHits"), 1);

  // The stored stats are what a cache-less compile records, verbatim. Use a
  // jobs=1-populated cache for this comparison: the cold baseline ran at
  // jobs=1 and cover-phase telemetry legitimately records the worker count.
  auto serialCache = std::make_shared<ResultCache>(CacheConfig{});
  (void)compileWith(dag, machine, 1, serialCache);
  const Outcome serialHit = compileWith(dag, machine, 1, serialCache);
  ASSERT_TRUE(serialHit.fromCache);
  const TelemetryNode stored =
      TelemetryNode::fromJson(serialHit.cachedStatsJson);
  const TelemetryNode coldTel = TelemetryNode::fromJson(cold.blockStatsJson);
  EXPECT_TRUE(stored.sameShapeAs(coldTel))
      << "stored:\n" << stored.toJson() << "\ncold:\n" << coldTel.toJson();
}

std::vector<ServiceCase> allCases() {
  std::vector<ServiceCase> cases;
  for (const std::string& machine : stemsWithExtension(machineDir(), ".isdl"))
    for (const std::string& block : stemsWithExtension(blockDir(), ".blk"))
      cases.push_back({block, machine});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBlocksAllMachines, CacheReplay,
                         ::testing::ValuesIn(allCases()),
                         [](const auto& info) {
                           return info.param.block + "_" + info.param.machine;
                         });

// Program-level replay: every block hydrates from the cache, the merged
// symbol table is identical, and the replayed program simulates identically.
TEST(CacheReplay, ProgramReplaysFromCache) {
  const Program program = parseProgram(R"(
    block entry {
      input n;
      output cond, x;
      x = n * n;
      cond = x > 100;
      if cond goto big else small;
    }
    block big {
      input x;
      output r, s;
      s = x + x;
      r = x - 100 + s;
      return;
    }
    block small {
      input x;
      output r;
      r = x + 1;
      return;
    }
  )",
                                       "branchy");
  const Machine machine = loadMachine("arch1");
  auto cache = std::make_shared<ResultCache>(CacheConfig{});

  auto compileOnce = [&] {
    DriverOptions options;
    options.core = CodegenOptions::heuristicsOn();
    options.cache = cache;
    CodeGenerator generator(machine, options);
    return generator.compileProgram(program);
  };
  const CompiledProgram cold = compileOnce();
  const CompiledProgram warm = compileOnce();

  ASSERT_EQ(warm.blocks.size(), cold.blocks.size());
  for (size_t i = 0; i < cold.blocks.size(); ++i) {
    EXPECT_FALSE(cold.blocks[i].fromCache) << "block " << i;
    EXPECT_TRUE(warm.blocks[i].fromCache) << "block " << i;
    EXPECT_EQ(warm.blocks[i].image.asmText(machine),
              cold.blocks[i].image.asmText(machine))
        << "block " << i;
  }
  EXPECT_EQ(warm.symbols.all(), cold.symbols.all());
  EXPECT_EQ(warm.totalInstructions(), cold.totalInstructions());
  for (const int64_t n : {5, 11, -3})
    EXPECT_EQ(simulateProgram(machine, warm, {{"n", n}}),
              simulateProgram(machine, cold, {{"n", n}}))
        << "n = " << n;
}

// Per-generator session telemetry surfaces the shared cache's counters as
// the "service" phase (what --stats-json exposes).
TEST(CacheReplay, ServicePhaseSurfacesCounters) {
  const BlockDag dag = loadBlock("ex1");
  const Machine machine = loadMachine("arch1");
  auto cache = std::make_shared<ResultCache>(CacheConfig{});

  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.cache = cache;
  CodeGenerator generator(machine, options);
  SymbolTable s1, s2;
  (void)generator.compileBlock(dag, s1);
  (void)generator.compileBlock(dag, s2);

  const TelemetryNode* service = generator.telemetry().findChild("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->counter("lookups"), 2);
  EXPECT_EQ(service->counter("misses"), 1);
  EXPECT_EQ(service->counter("hits"), 1);
  EXPECT_EQ(service->counter("memoryHits"), 1);
  EXPECT_EQ(service->counter("stores"), 1);
}

// Driver-level corruption robustness: a flipped byte in the on-disk entry
// must yield a correct recompile (identical assembly), a corrupt count of
// one, and a rewritten entry that the next compile hits.
TEST(CacheReplay, CorruptDiskEntryRecompilesAndHeals) {
  const BlockDag dag = loadBlock("ex1");
  const Machine machine = loadMachine("arch1");
  const std::string dir =
      (fs::temp_directory_path() / "aviv_service_corrupt_test").string();
  fs::remove_all(dir);

  CacheConfig config;
  config.dir = dir;
  config.memoryEntries = 0;  // force the disk tier on every lookup

  const Outcome cold = compileWith(dag, machine, 1, nullptr);
  ASSERT_TRUE(cold.ok) << cold.error;

  std::string entryFile;
  {
    auto cache = std::make_shared<ResultCache>(config);
    const Outcome populate = compileWith(dag, machine, 1, cache);
    ASSERT_TRUE(populate.ok) << populate.error;
    // Find the one object file the store wrote and flip a byte in it.
    for (const auto& f :
         fs::recursive_directory_iterator(fs::path(dir) / "objects"))
      if (f.is_regular_file()) entryFile = f.path().string();
    ASSERT_FALSE(entryFile.empty());
    std::string bytes = readFile(entryFile);
    bytes[bytes.size() / 2] ^= 0x10;
    writeFile(entryFile, bytes);
  }

  auto cache = std::make_shared<ResultCache>(config);
  const Outcome recompiled = compileWith(dag, machine, 1, cache);
  ASSERT_TRUE(recompiled.ok) << recompiled.error;
  EXPECT_FALSE(recompiled.fromCache) << "stale result served from corrupt entry";
  EXPECT_EQ(recompiled.asmText, cold.asmText);
  EXPECT_EQ(cache->stats().corrupt, 1);
  EXPECT_TRUE(fs::exists(entryFile)) << "recompile must rewrite the entry";

  const Outcome healed = compileWith(dag, machine, 1, cache);
  EXPECT_TRUE(healed.fromCache);
  EXPECT_EQ(healed.asmText, cold.asmText);
  EXPECT_EQ(cache->stats().corrupt, 1);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace aviv
