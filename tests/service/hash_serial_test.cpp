// The support-layer primitives the compilation service is built on: the
// self-contained 128-bit hash (cache keys must be stable across processes
// and platforms) and the bounds-checked binary codec (corrupt files must
// surface as clean errors, never UB).
#include <gtest/gtest.h>

#include "support/error.h"
#include "support/hash.h"
#include "support/serial.h"

namespace aviv {
namespace {

TEST(Hash128, HexIs32LowercaseChars) {
  Hash128 h;
  h.hi = 0x0123456789abcdefull;
  h.lo = 0xfedcba9876543210ull;
  EXPECT_EQ(h.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Hash128{}.hex(), std::string(32, '0'));
}

TEST(Hasher, DeterministicAcrossInstances) {
  auto digest = [] {
    Hasher h;
    h.str("machine").u64(42).boolean(true).f64(1.5).i64(-7);
    return h.digest();
  };
  EXPECT_EQ(digest(), digest());
}

TEST(Hasher, KnownValuePinsTheAlgorithm) {
  // Golden value: if this changes, every on-disk cache key changes — bump
  // kFingerprintVersion instead of silently re-keying.
  Hasher h;
  h.str("aviv");
  const Hash128 d = h.digest();
  EXPECT_EQ(d, (Hasher().str("aviv").digest()));
  EXPECT_FALSE(d.isZero());
}

TEST(Hasher, FieldBoundariesDoNotAlias) {
  const Hash128 a = Hasher().str("ab").str("c").digest();
  const Hash128 b = Hasher().str("a").str("bc").digest();
  EXPECT_NE(a, b);
}

TEST(Hasher, TypeTagsDistinguishSameBitPatterns) {
  EXPECT_NE(Hasher().u64(5).digest(), Hasher().i64(5).digest());
  EXPECT_NE(Hasher().u8(1).digest(), Hasher().boolean(true).digest());
}

TEST(Hasher, SingleBitChangesDigest) {
  const Hash128 base = Hasher().u64(0x1000).digest();
  for (int bit = 0; bit < 64; ++bit)
    EXPECT_NE(base, Hasher().u64(0x1000ull ^ (1ull << bit)).digest())
        << "bit " << bit;
}

TEST(Hash64, ChecksumDetectsFlips) {
  const std::string payload = "the quick brown fox";
  const uint64_t sum = hash64(payload.data(), payload.size());
  std::string flipped = payload;
  flipped[5] ^= 0x40;
  EXPECT_NE(sum, hash64(flipped.data(), flipped.size()));
}

TEST(Serial, RoundTripsEveryType) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.25);
  w.str("hello");
  w.str(std::string("nul\0inside", 10));

  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
  EXPECT_TRUE(r.atEnd());
}

TEST(Serial, TruncationThrowsCleanError) {
  ByteWriter w;
  w.u64(7);
  w.str("payload");
  const std::string full = w.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(std::string_view(full).substr(0, cut));
    EXPECT_THROW(
        {
          (void)r.u64();
          (void)r.str();
        },
        Error)
        << "cut at " << cut;
  }
}

TEST(Serial, OversizedStringLengthRejected) {
  // A bit flip in a length prefix must not read out of bounds.
  ByteWriter w;
  w.u32(0xffffffffu);  // claims a 4 GiB string
  ByteReader r(w.buffer());
  EXPECT_THROW((void)r.str(), Error);
}

}  // namespace
}  // namespace aviv
