// Canonicalization rules of the compile fingerprint (service/fingerprint.h):
// everything that can change the compiled output must move the hash, and the
// documented exclusions (jobs, session seed) must NOT move it — they are what
// make one cache entry replayable across worker counts and sessions.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/context.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "service/fingerprint.h"

namespace aviv {
namespace {

TEST(FingerprintMachine, StableAcrossLoads) {
  EXPECT_EQ(fingerprintMachine(loadMachine("arch1")),
            fingerprintMachine(loadMachine("arch1")));
}

TEST(FingerprintMachine, DistinguishesMachines) {
  const Hash128 arch1 = fingerprintMachine(loadMachine("arch1"));
  EXPECT_NE(arch1, fingerprintMachine(loadMachine("arch2")));
  // Structural edits matter even when the name is unchanged: register-file
  // sizes feed straight into covering and register allocation.
  EXPECT_NE(arch1,
            fingerprintMachine(loadMachine("arch1").withRegisterCount(2)));
}

TEST(FingerprintDag, StableAcrossParses) {
  EXPECT_EQ(fingerprintDag(loadBlock("ex1")), fingerprintDag(loadBlock("ex1")));
}

TEST(FingerprintDag, DistinguishesBlocks) {
  EXPECT_NE(fingerprintDag(loadBlock("ex1")), fingerprintDag(loadBlock("fig2")));
}

TEST(FingerprintDag, ConstantValueMatters) {
  auto dagFor = [](const char* text) {
    return fingerprintDag(parseProgram(text, "t").block(0));
  };
  const Hash128 a = dagFor("block t { input x; output y; y = x + 1; }");
  const Hash128 b = dagFor("block t { input x; output y; y = x + 2; }");
  EXPECT_NE(a, b);
}

// Every field forEachFingerprintField enumerates must move the options
// fingerprint. The mutator list below is cross-checked against the visitor's
// field count, so adding a field to the visitor without adding a mutation
// here fails the test.
TEST(FingerprintOptions, EveryEnumeratedFieldChangesTheHash) {
  struct Mutation {
    const char* field;
    std::function<void(CodegenOptions&)> apply;
  };
  const std::vector<Mutation> mutations = {
      {"assignPruneIncremental", [](auto& o) { o.assignPruneIncremental = !o.assignPruneIncremental; }},
      {"assignPruneSlack", [](auto& o) { o.assignPruneSlack += 0.5; }},
      {"assignBeamWidth", [](auto& o) { o.assignBeamWidth += 1; }},
      {"assignKeepBest", [](auto& o) { o.assignKeepBest += 1; }},
      {"maxAssignments", [](auto& o) { o.maxAssignments += 1; }},
      {"smallSpaceExhaustive", [](auto& o) { o.smallSpaceExhaustive += 1; }},
      {"transferCostWeight", [](auto& o) { o.transferCostWeight += 0.25; }},
      {"parallelismCostWeight", [](auto& o) { o.parallelismCostWeight += 0.25; }},
      {"complexCoverBonus", [](auto& o) { o.complexCoverBonus += 0.25; }},
      {"registerAwareAssignment", [](auto& o) { o.registerAwareAssignment = !o.registerAwareAssignment; }},
      {"registerPressurePenalty", [](auto& o) { o.registerPressurePenalty += 1.0; }},
      {"enableComplexPatterns", [](auto& o) { o.enableComplexPatterns = !o.enableComplexPatterns; }},
      {"cliqueLevelWindow", [](auto& o) { o.cliqueLevelWindow += 1; }},
      {"maxCliquesPerRound", [](auto& o) { o.maxCliquesPerRound += 1; }},
      {"coverLookahead", [](auto& o) { o.coverLookahead = !o.coverLookahead; }},
      {"timeLimitSeconds", [](auto& o) { o.timeLimitSeconds += 1.0; }},
      {"constantsInMemory", [](auto& o) { o.constantsInMemory = !o.constantsInMemory; }},
      {"outputsToMemory", [](auto& o) { o.outputsToMemory = !o.outputsToMemory; }},
      {"maxSndNodes", [](auto& o) { o.maxSndNodes += 1; }},
      {"maxSndBytes", [](auto& o) { o.maxSndBytes += 1; }},
      {"maxTotalCliques", [](auto& o) { o.maxTotalCliques += 1; }},
  };

  size_t enumerated = 0;
  CodegenOptions probe;
  probe.forEachFingerprintField([&](const char*, auto) { ++enumerated; });
  ASSERT_EQ(mutations.size(), enumerated)
      << "forEachFingerprintField and this test enumerate different field "
         "sets; update both together";

  const Hash128 base = fingerprintOptions(CodegenOptions{}, true, true);
  for (const Mutation& m : mutations) {
    CodegenOptions mutated;
    m.apply(mutated);
    EXPECT_NE(base, fingerprintOptions(mutated, true, true))
        << "field " << m.field << " does not move the fingerprint";
  }
}

TEST(FingerprintOptions, DriverFlagsChangeTheHash) {
  const CodegenOptions opts;
  const Hash128 base = fingerprintOptions(opts, true, true);
  EXPECT_NE(base, fingerprintOptions(opts, false, true));
  EXPECT_NE(base, fingerprintOptions(opts, true, false));
}

TEST(FingerprintOptions, JobsIsExcluded) {
  CodegenOptions serial;
  serial.jobs = 1;
  CodegenOptions parallel;
  parallel.jobs = 8;
  // Parallel covering is bit-identical to serial, so a cache populated at
  // any worker count must replay at any other.
  EXPECT_EQ(fingerprintOptions(serial, true, true),
            fingerprintOptions(parallel, true, true));
}

TEST(CompileFingerprint, SeedIsExcludedAndMemoAgreesWithLocal) {
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");
  const CodegenOptions opts = CodegenOptions::heuristicsOn();

  CodegenContext plain(machine, opts, /*seed=*/1);
  CodegenContext seeded(machine, opts, /*seed=*/999);
  CodegenContext memoized(machine, opts, /*seed=*/1);
  memoized.setMachineFingerprint(fingerprintMachine(memoized.machine()));

  const Hash128 a = compileFingerprint(plain, dag, opts, true, true);
  EXPECT_EQ(a, compileFingerprint(seeded, dag, opts, true, true));
  EXPECT_EQ(a, compileFingerprint(memoized, dag, opts, true, true));
  EXPECT_FALSE(a.isZero());
}

TEST(CompileFingerprint, ComponentsAreNotInterchangeable) {
  const Machine arch1 = loadMachine("arch1");
  const Machine arch2 = loadMachine("arch2");
  const BlockDag ex1 = loadBlock("ex1");
  const BlockDag fig2 = loadBlock("fig2");
  const CodegenOptions opts = CodegenOptions::heuristicsOn();

  CodegenContext c1(arch1, opts, 1);
  CodegenContext c2(arch2, opts, 1);
  const Hash128 base = compileFingerprint(c1, ex1, opts, true, true);
  EXPECT_NE(base, compileFingerprint(c2, ex1, opts, true, true));
  EXPECT_NE(base, compileFingerprint(c1, fig2, opts, true, true));
  EXPECT_NE(base,
            compileFingerprint(c1, ex1, CodegenOptions::heuristicsOff(), true,
                               true));
}

}  // namespace
}  // namespace aviv
