#include "core/spill.h"

#include <gtest/gtest.h>

#include "core/assign_explore.h"
#include <algorithm>

#include "ir/parser.h"
#include "support/error.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

// Stages the paper's Figure 9 scenario on the Figure 2 block: the ADD runs
// on U3 and its value is pending a transfer to the SUB on U2. Spilling the
// ADD must (a) append a store chain, (b) delete the pending transfer, and
// (c) rewire the SUB onto a reload.
struct Fig9Stage {
  BlockDag dag = loadBlock("fig2");
  Machine machine = loadMachine("arch1");
  MachineDatabases dbs{machine};
  CodegenOptions options;
  SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  AssignedGraph graph;
  AgId add = kNoAg;
  AgId sub = kNoAg;
  AgId xfer = kNoAg;  // RF3 -> RF2 move of the ADD's value
  DynBitset covered;

  Fig9Stage() : graph(makeGraph()) {
    for (AgId id = 0; id < graph.size(); ++id) {
      const AgNode& n = graph.node(id);
      if (n.kind == AgKind::kOp && n.machineOp == Op::kAdd) add = id;
      if (n.kind == AgKind::kOp && n.machineOp == Op::kSub) sub = id;
      if (n.isTransferish()) {
        const TransferPath& p =
            machine.transfers()[static_cast<size_t>(n.pathId)];
        if (p.from == Loc::regFile(*machine.findRegFile("RF3")) &&
            p.to == Loc::regFile(*machine.findRegFile("RF2")))
          xfer = id;
      }
    }
    // Cover the ADD and everything it depends on (its operand loads).
    covered = DynBitset(graph.size());
    covered.set(add);
    for (AgId pred : graph.node(add).preds) covered.set(pred);
  }

  AssignedGraph makeGraph() {
    Assignment assignment;
    assignment.chosenAlt.assign(dag.size(), kNoSnd);
    auto pick = [&](Op op, const char* unitName) {
      for (NodeId id = 0; id < dag.size(); ++id) {
        if (dag.node(id).op != op) continue;
        for (SndId alt : snd.altsOf(id))
          if (machine.unit(snd.node(alt).unit).name == unitName)
            assignment.chosenAlt[id] = alt;
      }
    };
    pick(Op::kAdd, "U3");
    pick(Op::kMul, "U2");
    pick(Op::kSub, "U2");
    return AssignedGraph::materialize(snd, assignment, options);
  }
};

TEST(Spill, Fig9DeletesPendingTransferAndRewiresConsumer) {
  Fig9Stage stage;
  ASSERT_NE(stage.add, kNoAg);
  ASSERT_NE(stage.sub, kNoAg);
  ASSERT_NE(stage.xfer, kNoAg);
  // Before: the SUB reads the ADD's value through the transfer.
  {
    const auto& defs = stage.graph.node(stage.sub).operandDefs;
    EXPECT_NE(std::find(defs.begin(), defs.end(), stage.xfer), defs.end());
  }

  SpillState state;
  const AgId victim = performSpill(stage.graph, stage.dbs.transfers,
                                   stage.covered, state);
  EXPECT_EQ(victim, stage.add);
  EXPECT_TRUE(state.spilled.count(stage.add));

  // (a) a spill store chain reading the ADD exists.
  AgId store = kNoAg;
  for (AgId id = 0; id < stage.graph.size(); ++id)
    if (stage.graph.node(id).kind == AgKind::kSpillStore) store = id;
  ASSERT_NE(store, kNoAg);
  EXPECT_EQ(stage.graph.node(store).valueSrc, stage.add);

  // (b) the pending transfer is gone (the paper's removed '+ to -' move).
  EXPECT_TRUE(stage.graph.node(stage.xfer).deleted());

  // (c) the SUB now reads a reload that depends on the store.
  AgId reload = kNoAg;
  for (AgId def : stage.graph.node(stage.sub).operandDefs) {
    if (def != kNoAg && stage.graph.node(def).kind == AgKind::kSpillLoad)
      reload = def;
  }
  ASSERT_NE(reload, kNoAg);
  const auto& preds = stage.graph.node(reload).preds;
  EXPECT_NE(std::find(preds.begin(), preds.end(), store), preds.end());
  stage.graph.verify();
}

TEST(Spill, BankPressureCountsLiveValuesOnly) {
  Fig9Stage stage;
  const auto pressure = bankPressure(stage.graph, stage.covered);
  // Only the ADD's value is live (its operand loads died feeding it).
  const RegFileId rf3 = *stage.machine.findRegFile("RF3");
  EXPECT_EQ(pressure[rf3], 1);
  const RegFileId rf2 = *stage.machine.findRegFile("RF2");
  EXPECT_EQ(pressure[rf2], 0);
}

TEST(Spill, PressureWithinLimitsChecksEveryBank) {
  Fig9Stage stage;
  std::vector<int> pressure(stage.machine.regFiles().size(), 0);
  EXPECT_TRUE(pressureWithinLimits(stage.graph, pressure));
  pressure[0] = stage.machine.regFile(0).numRegs + 1;
  EXPECT_FALSE(pressureWithinLimits(stage.graph, pressure));
}

TEST(Spill, ThrowsWhenNothingSpillableRemains) {
  Fig9Stage stage;
  SpillState state;
  (void)performSpill(stage.graph, stage.dbs.transfers, stage.covered,
                     state);
  // After the spill, cover the store chain too: the spilled value is dead
  // and no other covered value is live, so a further spill has no victim.
  stage.covered.resize(stage.graph.size(), false);
  for (AgId id = 0; id < stage.graph.size(); ++id) {
    const AgNode& n = stage.graph.node(id);
    if (n.deleted() || n.kind == AgKind::kSpillStore) stage.covered.set(id);
  }
  EXPECT_THROW((void)performSpill(stage.graph, stage.dbs.transfers,
                                  stage.covered, state),
               Error);
}

}  // namespace
}  // namespace aviv
