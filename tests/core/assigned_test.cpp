// Unit tests for the AssignedGraph materializer and its mutation primitives
// (the covering engine's spill machinery builds on these).
#include "core/assigned.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/assign_explore.h"
#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

struct Mat {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CodegenOptions options;
  SplitNodeDag snd;
  AssignedGraph graph;

  explicit Mat(const std::string& source,
               const std::string& machineName = "arch1",
               CodegenOptions opts = {})
      : dag(parseBlock(source)),
        machine(loadMachine(machineName)),
        dbs(machine),
        options(opts),
        snd(SplitNodeDag::build(dag, machine, dbs, options)),
        graph(AssignedGraph::materialize(
            snd, AssignmentExplorer(snd, options).explore().front(),
            options)) {}
};

TEST(AssignedGraph, EveryOpHasResolvedOperands) {
  Mat m("block t { input a, b, c; output y; y = (a + b) * c; }");
  for (AgId id = 0; id < m.graph.size(); ++id) {
    const AgNode& n = m.graph.node(id);
    if (n.kind != AgKind::kOp) continue;
    ASSERT_EQ(n.operandDefs.size(), n.operandIr.size());
    for (size_t i = 0; i < n.operandDefs.size(); ++i) {
      if (n.operandDefs[i] == kNoAg) {
        EXPECT_EQ(m.dag.node(n.operandIr[i]).op, Op::kConst);
      } else {
        EXPECT_EQ(m.graph.node(n.operandDefs[i]).defLoc, n.defLoc);
      }
    }
  }
}

TEST(AssignedGraph, SharedOperandLoadsOnce) {
  // `b` feeds two ops; if both land in one bank there must be exactly one
  // load of b into it.
  Mat m("block t { input a, b; output y, z; y = a + b; z = a - b; }");
  std::map<std::pair<NodeId, uint16_t>, int> loadsPerBank;
  for (AgId id = 0; id < m.graph.size(); ++id) {
    const AgNode& n = m.graph.node(id);
    if (n.isTransferish() && n.valueSrc == kNoAg && !n.deleted())
      loadsPerBank[{n.ir, n.defLoc.index}] += 1;
  }
  for (const auto& [key, count] : loadsPerBank) EXPECT_EQ(count, 1);
}

TEST(AssignedGraph, OutputDefsPointAtProducingNodes) {
  Mat m("block t { input a, b; output y; y = a * b; }");
  ASSERT_EQ(m.graph.outputDefs().size(), 1u);
  const auto& [name, def] = m.graph.outputDefs()[0];
  EXPECT_EQ(name, "y");
  ASSERT_NE(def, kNoAg);
  EXPECT_EQ(m.graph.node(def).kind, AgKind::kOp);
  EXPECT_EQ(m.graph.node(def).machineOp, Op::kMul);
}

TEST(AssignedGraph, RetargetConsumerRewiresEdgesAndOperands) {
  Mat m("block t { input a, b; output y; y = a + b; }");
  // Find the add and one of its operand defs; retarget to the other.
  AgId add = kNoAg;
  for (AgId id = 0; id < m.graph.size(); ++id)
    if (m.graph.node(id).kind == AgKind::kOp) add = id;
  ASSERT_NE(add, kNoAg);
  const AgId oldDef = m.graph.node(add).operandDefs[0];
  const AgId otherDef = m.graph.node(add).operandDefs[1];
  ASSERT_NE(oldDef, otherDef);

  m.graph.retargetConsumer(add, oldDef, otherDef);
  EXPECT_EQ(m.graph.node(add).operandDefs[0], otherDef);
  // The old def no longer lists the add as successor.
  const auto& succs = m.graph.node(oldDef).succs;
  EXPECT_EQ(std::find(succs.begin(), succs.end(), add), succs.end());
  // Now the old load is dead; delete works since it has no successors.
  m.graph.deleteNode(oldDef);
  EXPECT_TRUE(m.graph.node(oldDef).deleted());
  m.graph.verify();
}

TEST(AssignedGraph, SpillStoreAndLoadChainsWellFormed) {
  Mat m("block t { input a, b; output y, z; y = a + b; z = a - b; }");
  AgId victim = kNoAg;
  for (AgId id = 0; id < m.graph.size(); ++id)
    if (m.graph.node(id).definesRegister()) victim = id;
  ASSERT_NE(victim, kNoAg);

  const auto store = m.graph.addSpillStore(victim, m.dbs.transfers);
  EXPECT_GE(store.slot, 0);
  ASSERT_FALSE(store.chain.empty());
  EXPECT_EQ(m.graph.node(store.chain.back()).kind, AgKind::kSpillStore);
  EXPECT_TRUE(m.graph.node(store.chain.back()).defLoc.isMemory());

  const auto load = m.graph.addSpillLoad(
      store.slot, m.graph.node(victim).defLoc, store.chain.back(),
      m.graph.node(victim).ir, m.dbs.transfers);
  ASSERT_FALSE(load.empty());
  EXPECT_EQ(m.graph.node(load.front()).kind, AgKind::kSpillLoad);
  EXPECT_EQ(m.graph.node(load.back()).defLoc, m.graph.node(victim).defLoc);
  // The load depends on the store.
  const auto& preds = m.graph.node(load.front()).preds;
  EXPECT_NE(std::find(preds.begin(), preds.end(), store.chain.back()),
            preds.end());
  EXPECT_EQ(m.graph.numSpillSlots(), 1);
  m.graph.verify();
}

TEST(AssignedGraph, LevelsAndDescendantsConsistent) {
  Mat m("block t { input a, b, c; output y; y = (a + b) * c - a; }");
  const auto desc = m.graph.computeDescendants();
  const auto top = m.graph.levelsFromTop();
  const auto bottom = m.graph.levelsFromBottom();
  for (AgId id = 0; id < m.graph.size(); ++id) {
    for (AgId succ : m.graph.node(id).succs) {
      EXPECT_TRUE(desc[id].test(succ));
      EXPECT_GT(top[id], top[succ]);
      EXPECT_LT(bottom[id], bottom[succ]);
    }
  }
}

TEST(AssignedGraph, DescribeIsHumanReadable) {
  Mat m("block t { input a; output y; y = ~a; }");
  bool sawOp = false;
  bool sawXfer = false;
  for (AgId id = 0; id < m.graph.size(); ++id) {
    const std::string text = m.graph.describe(id);
    sawOp |= text.find("COMPL@U1") != std::string::npos;
    sawXfer |= text.find("xfer DM->RF1") != std::string::npos;
  }
  EXPECT_TRUE(sawOp);
  EXPECT_TRUE(sawXfer);
}

}  // namespace
}  // namespace aviv
