// Constant-pool mode (CodegenOptions::constantsInMemory): constants become
// data-memory cells loaded over the bus, like named variables.
#include <gtest/gtest.h>

#include "asmgen/encode.h"
#include "core/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "driver/codegen.h"
#include "isdl/parser.h"
#include "regalloc/regalloc.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace aviv {
namespace {

struct PoolRun {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;
  RegAssignment regs;
  SymbolTable symbols;
  CodeImage image;

  explicit PoolRun(const std::string& source,
                   const std::string& machineName = "arch1")
      : dag(parseBlock(source)),
        machine(loadMachine(machineName)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, poolOptions())),
        regs(allocateRegisters(core.graph, core.schedule)),
        image(encodeBlock(core.graph, core.schedule, regs, symbols)) {}

  static CodegenOptions poolOptions() {
    CodegenOptions options;
    options.constantsInMemory = true;
    return options;
  }
};

TEST(ConstPool, ConstantsBecomeLoads) {
  PoolRun run("block t { input a; output y; y = a + 7; }");
  // The graph must hold a pool cell for 7 and no inline immediates.
  ASSERT_EQ(run.core.graph.constPool().size(), 1u);
  EXPECT_EQ(run.core.graph.constPool().begin()->second, 7);
  for (const EncInstr& instr : run.image.instrs)
    for (const EncOp& op : instr.ops)
      for (const EncOperand& src : op.srcs) EXPECT_FALSE(src.isImm);
}

TEST(ConstPool, SimulationMatchesReference) {
  PoolRun run(R"(
    block t {
      input a, b;
      output y, z;
      y = (a + 100) * (b - 7);
      z = a * 3 + b * 5;
    }
  )");
  const Simulator sim(run.machine);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::map<std::string, int64_t> inputs = {{"a", rng.intIn(-50, 50)},
                                             {"b", rng.intIn(-50, 50)}};
    EXPECT_EQ(sim.runBlockFresh(run.image, run.symbols, inputs),
              evalDagOutputs(run.dag, inputs));
  }
}

TEST(ConstPool, SharedConstantLoadsOnce) {
  PoolRun run(R"(
    block t {
      input a, b;
      output y, z;
      y = a * 10;
      z = b * 10;   # same constant
    }
  )");
  EXPECT_EQ(run.core.graph.constPool().size(), 1u);
}

TEST(ConstPool, PoolCellsDistinctFromVariables) {
  PoolRun run("block t { input a; output y; y = a + 42; }");
  const int aAddr = run.symbols.lookup("a");
  const int cAddr = run.symbols.lookup("$c42");
  EXPECT_NE(aAddr, cAddr);
  ASSERT_EQ(run.image.constPool.size(), 1u);
  EXPECT_EQ(run.image.constPool[0].first, cAddr);
  EXPECT_EQ(run.image.constPool[0].second, 42);
}

TEST(ConstPool, ConstantOutputSupported) {
  PoolRun run("block t { input a; output y, k; y = a + 1; k = 9; }");
  const Simulator sim(run.machine);
  const auto out = sim.runBlockFresh(run.image, run.symbols, {{"a", 4}});
  EXPECT_EQ(out.at("y"), 5);
  EXPECT_EQ(out.at("k"), 9);
}

TEST(ConstPool, WorksInPrograms) {
  // Through the driver: multi-block with constants in memory.
  const Program program = parseProgram(R"(
    block scale {
      input x;
      output t;
      t = x * 1000;
    }
    block offset {
      input t;
      output y;
      y = t + 999999;
      return;
    }
  )",
                                       "p");
  const Machine machine = loadMachine("arch1");
  DriverOptions driverOptions;
  driverOptions.core.constantsInMemory = true;
  CodeGenerator generator(machine, driverOptions);
  const CompiledProgram compiled = generator.compileProgram(program);
  const auto result = simulateProgram(machine, compiled, {{"x", 3}});
  EXPECT_EQ(result.at("y"), 3 * 1000 + 999999);
}

TEST(ConstPool, CodeSizeGrowsVsImmediates) {
  // Pool mode pays bus loads for constants; immediate mode does not.
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 3 + 7; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult imm = coverBlock(dag, machine, dbs, CodegenOptions{});
  const CoreResult pool =
      coverBlock(dag, machine, dbs, PoolRun::poolOptions());
  EXPECT_GE(pool.schedule.numInstructions(),
            imm.schedule.numInstructions());
}

}  // namespace
}  // namespace aviv
