#include <gtest/gtest.h>

#include "core/assign_explore.h"
#include "core/clique.h"
#include "core/legality.h"
#include "core/parallel_matrix.h"
#include "core/spill.h"
#include "core/workspace.h"
#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

// Fixture resources for one materialized assignment.
struct Materialized {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  SplitNodeDag snd;
  AssignedGraph graph;

  Materialized(const std::string& source, const std::string& machineName,
               CodegenOptions options = {})
      : dag(parseBlock(source)),
        machine(loadMachine(machineName)),
        dbs(machine),
        snd(SplitNodeDag::build(dag, machine, dbs, options)),
        graph(AssignedGraph::materialize(
            snd, AssignmentExplorer(snd, options).explore().front(),
            options)) {}
};

TEST(ParallelismMatrix, DependentNodesConflict) {
  Materialized m("block t { input a, b; output y; y = (a + b) * a; }",
                 "arch1");
  const ParallelismMatrix matrix(m.graph, -1);
  // Every (pred, succ) pair conflicts.
  for (AgId id = 0; id < m.graph.size(); ++id) {
    for (AgId succ : m.graph.node(id).succs)
      EXPECT_FALSE(matrix.parallel(id, succ));
  }
}

TEST(ParallelismMatrix, SameUnitOpsConflict) {
  // Two independent adds; force both onto U1 via a machine with one unit.
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 8;
      memory DM size 64 data;
      bus X capacity 4;
      unit U regfile A { op ADD; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases dbs(machine);
  const BlockDag dag = parseBlock(
      "block t { input a, b, c, d; output y, z; y = a + b; z = c + d; }");
  CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const AssignedGraph graph = AssignedGraph::materialize(
      snd, AssignmentExplorer(snd, options).explore().front(), options);
  const ParallelismMatrix matrix(graph, -1);
  std::vector<AgId> ops;
  for (AgId id = 0; id < graph.size(); ++id)
    if (graph.node(id).kind == AgKind::kOp) ops.push_back(id);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_FALSE(matrix.parallel(ops[0], ops[1]));
}

TEST(ParallelismMatrix, SingleCapacityBusTransfersConflict) {
  Materialized m(
      "block t { input a, b, c, d; output y, z; y = a + b; z = c - d; }",
      "arch1");
  const ParallelismMatrix matrix(m.graph, -1);
  std::vector<AgId> loads;
  for (AgId id = 0; id < m.graph.size(); ++id)
    if (m.graph.node(id).isTransferish()) loads.push_back(id);
  ASSERT_GE(loads.size(), 2u);
  for (size_t i = 0; i < loads.size(); ++i)
    for (size_t j = i + 1; j < loads.size(); ++j)
      EXPECT_FALSE(matrix.parallel(loads[i], loads[j]));
}

TEST(ParallelismMatrix, MultiCapacityBusAllowsPairs) {
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 8;
      regfile B size 8;
      memory DM size 64 data;
      bus X capacity 2;
      unit U1 regfile A { op ADD; }
      unit U2 regfile B { op SUB; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases dbs(machine);
  const BlockDag dag = parseBlock(
      "block t { input a, b, c, d; output y, z; y = a + b; z = c - d; }");
  CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const AssignedGraph graph = AssignedGraph::materialize(
      snd, AssignmentExplorer(snd, options).explore().front(), options);
  const ParallelismMatrix matrix(graph, -1);
  std::vector<AgId> loads;
  for (AgId id = 0; id < graph.size(); ++id)
    if (graph.node(id).isTransferish()) loads.push_back(id);
  ASSERT_GE(loads.size(), 2u);
  EXPECT_TRUE(matrix.parallel(loads[0], loads[1]));
}

TEST(ParallelismMatrix, LevelWindowFiltersDistantPairs) {
  Materialized m(
      "block t { input a, b, c; output y; y = ((a + b) * c) - a; }",
      "arch1");
  const ParallelismMatrix full(m.graph, -1);
  const ParallelismMatrix windowed(m.graph, 0);
  size_t fullPairs = 0;
  size_t windowedPairs = 0;
  for (AgId i = 0; i < m.graph.size(); ++i) {
    for (AgId j = i + 1; j < m.graph.size(); ++j) {
      fullPairs += full.parallel(i, j) ? 1 : 0;
      windowedPairs += windowed.parallel(i, j) ? 1 : 0;
    }
  }
  EXPECT_LE(windowedPairs, fullPairs);
}

TEST(ParallelismMatrix, StrRendersFig7StyleMatrix) {
  Materialized m("block t { input a, b; output y; y = a + b; }", "arch1");
  std::vector<AgId> subset;
  std::vector<std::string> labels;
  for (AgId id = 0; id < m.graph.size(); ++id) {
    subset.push_back(id);
    labels.push_back("N" + std::to_string(id));
  }
  const std::string text = m.graph.size() > 0
                               ? ParallelismMatrix(m.graph, -1).str(subset, labels)
                               : "";
  EXPECT_NE(text.find("N0"), std::string::npos);
  EXPECT_NE(text.find("| 0"), std::string::npos);
}

// Regression for the latent deleted-row issue: the matrix stores one row
// per node *including* kDeleted nodes, and the covering engine relies on
// those rows being empty (a deleted node in a clique would resurrect it).
// Spill-induced transfer deletions are the only way nodes die in practice,
// so stage one and check every deleted row — through both the constructor
// and the workspace rebuild() path the engine actually uses.
TEST(ParallelismMatrix, DeletedNodeRowsStayEmptyAfterSpill) {
  const BlockDag dag = loadBlock("fig2");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  // The Fig 9 staging from spill_test: ADD on U3 feeding SUB on U2 through
  // a pending RF3->RF2 transfer; spilling the ADD deletes that transfer.
  Assignment assignment;
  assignment.chosenAlt.assign(dag.size(), kNoSnd);
  auto pick = [&](Op op, const char* unitName) {
    for (NodeId id = 0; id < dag.size(); ++id) {
      if (dag.node(id).op != op) continue;
      for (SndId alt : snd.altsOf(id))
        if (machine.unit(snd.node(alt).unit).name == unitName)
          assignment.chosenAlt[id] = alt;
    }
  };
  pick(Op::kAdd, "U3");
  pick(Op::kMul, "U2");
  pick(Op::kSub, "U2");
  AssignedGraph graph = AssignedGraph::materialize(snd, assignment, options);

  AgId add = kNoAg;
  for (AgId id = 0; id < graph.size(); ++id) {
    const AgNode& n = graph.node(id);
    if (n.kind == AgKind::kOp && n.machineOp == Op::kAdd) add = id;
  }
  ASSERT_NE(add, kNoAg);
  DynBitset covered(graph.size());
  covered.set(add);
  for (AgId pred : graph.node(add).preds) covered.set(pred);
  SpillState state;
  (void)performSpill(graph, dbs.transfers, covered, state);

  std::vector<AgId> deleted;
  for (AgId id = 0; id < graph.size(); ++id)
    if (graph.node(id).deleted()) deleted.push_back(id);
  ASSERT_FALSE(deleted.empty()) << "spill staged no deletion";

  const ParallelismMatrix fresh(graph, -1);
  CoverWorkspace ws;
  ParallelismMatrix rebuilt;
  rebuilt.rebuild(graph, /*levelWindow=*/-1, ws);
  for (AgId dead : deleted) {
    for (AgId other = 0; other < graph.size(); ++other) {
      EXPECT_FALSE(fresh.parallel(dead, other)) << dead << " " << other;
      EXPECT_FALSE(fresh.parallel(other, dead)) << other << " " << dead;
      EXPECT_FALSE(rebuilt.parallel(dead, other)) << dead << " " << other;
      EXPECT_FALSE(rebuilt.parallel(other, dead)) << other << " " << dead;
    }
  }
}

// --- legality / constraint splitting ----------------------------------

TEST(Legality, BusOverloadDetectedAndSplit) {
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 8;
      regfile B size 8;
      memory DM size 64 data;
      bus X capacity 2;
      unit U1 regfile A { op ADD; }
      unit U2 regfile B { op SUB; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases dbs(machine);
  const BlockDag dag = parseBlock(R"(
    block t { input a, b, c, d, e, f; output x, y, z;
      x = a + b; y = c - d; z = e + f; }
  )");
  CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const AssignedGraph graph = AssignedGraph::materialize(
      snd, AssignmentExplorer(snd, options).explore().front(), options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  // With capacity 2, the pairwise matrix allows 3+ transfers together; the
  // legality pass must split any clique with > 2 transfers.
  auto cliques = generateMaximalCliques(matrix, active, 100000);
  bool sawOverloaded = false;
  for (const auto& clique : cliques)
    sawOverloaded |= !cliqueIsLegal(clique, graph, dbs.constraints);
  EXPECT_TRUE(sawOverloaded);

  const auto legal = enforceLegality(std::move(cliques), graph, dbs.constraints);
  for (const auto& clique : legal)
    EXPECT_TRUE(cliqueIsLegal(clique, graph, dbs.constraints));
  // Coverage preserved.
  DynBitset covered(graph.size());
  for (const auto& clique : legal) covered |= clique;
  EXPECT_EQ(covered, active);
}

TEST(Legality, ConstraintViolationSplit) {
  const Machine machine = loadMachine("arch4");
  const MachineDatabases dbs(machine);
  const BlockDag dag = parseBlock(
      "block t { input a, b, c, d; output y, z; y = a * b; z = c * d; }");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  // Find the assignment putting one MUL on U2 and one on U3.
  const auto assignments = AssignmentExplorer(snd, options).explore();
  const UnitId u2 = *machine.findUnit("U2");
  const UnitId u3 = *machine.findUnit("U3");
  for (const Assignment& a : assignments) {
    std::vector<UnitId> units;
    for (NodeId id = 0; id < dag.size(); ++id)
      if (a.chosenAlt[id] != kNoSnd &&
          snd.node(a.chosenAlt[id]).machineOp == Op::kMul)
        units.push_back(snd.node(a.chosenAlt[id]).unit);
    if (units.size() != 2 ||
        !((units[0] == u2 && units[1] == u3) ||
          (units[0] == u3 && units[1] == u2)))
      continue;
    const AssignedGraph graph =
        AssignedGraph::materialize(snd, a, options);
    const ParallelismMatrix matrix(graph, -1);
    DynBitset active(graph.size(), true);
    const auto legal = enforceLegality(
        generateMaximalCliques(matrix, active, 100000), graph,
        dbs.constraints);
    for (const auto& clique : legal) {
      EXPECT_TRUE(cliqueIsLegal(clique, graph, dbs.constraints));
    }
    return;
  }
  FAIL() << "no assignment with MULs on both U2 and U3 found";
}

TEST(Legality, LegalCliquesPassThroughUnchanged) {
  Materialized m("block t { input a, b; output y; y = a + b; }", "arch1");
  const ParallelismMatrix matrix(m.graph, -1);
  DynBitset active(m.graph.size(), true);
  auto cliques = generateMaximalCliques(matrix, active, 1000);
  const size_t before = cliques.size();
  const auto legal =
      enforceLegality(std::move(cliques), m.graph, m.dbs.constraints);
  EXPECT_EQ(legal.size(), before);
}

}  // namespace
}  // namespace aviv
