#include "core/splitnode.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/error.h"

namespace aviv {
namespace {

struct Env {
  Machine machine;
  MachineDatabases dbs;
  explicit Env(const std::string& machineName)
      : machine(loadMachine(machineName)), dbs(machine) {}
};

BlockDag fig2Block() {
  // The paper's Fig 2 sample DAG: y = (a + b) - c * d.
  return parseBlock(R"(
    block fig2 {
      input a, b, c, d;
      output y;
      y = (a + b) - c * d;
    }
  )");
}

TEST(SplitNodeDag, AlternativesMatchUnitCapabilities) {
  Env env("arch1");
  const BlockDag dag = fig2Block();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});

  // From Section IV-A: ADD has 3 alternatives, MUL 2, SUB 2 -> 2*2*3 = 12
  // possible assignments.
  size_t product = 1;
  for (NodeId id = 0; id < dag.size(); ++id) {
    if (isLeafOp(dag.node(id).op)) {
      EXPECT_NE(snd.leafOf(id), kNoSnd);
      EXPECT_EQ(snd.splitOf(id), kNoSnd);
      continue;
    }
    EXPECT_NE(snd.splitOf(id), kNoSnd);
    product *= snd.altsOf(id).size();
    for (SndId alt : snd.altsOf(id)) {
      const SndNode& a = snd.node(alt);
      EXPECT_TRUE(
          env.machine.unit(a.unit).findOp(a.machineOp).has_value());
    }
  }
  EXPECT_EQ(product, 12u);
}

TEST(SplitNodeDag, NodeKindCountsAreConsistent) {
  Env env("arch1");
  const BlockDag dag = fig2Block();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  EXPECT_EQ(snd.numLeafNodes(), 4u);
  EXPECT_EQ(snd.numSplitNodes(), 3u);
  EXPECT_EQ(snd.numAltNodes(), 7u);  // 3 + 2 + 2
  EXPECT_EQ(snd.size(), snd.numLeafNodes() + snd.numSplitNodes() +
                            snd.numAltNodes() + snd.numTransferNodes());
  EXPECT_GT(snd.numTransferNodes(), 0u);
}

TEST(SplitNodeDag, TransferChainsOnlyBetweenDifferentStorages) {
  Env env("arch1");
  const BlockDag dag = fig2Block();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  // Same-unit producer/consumer pairs have no chain; cross-unit pairs have
  // exactly one single-hop chain on arch1.
  NodeId add = kNoNode;
  for (NodeId id = 0; id < dag.size(); ++id)
    if (dag.node(id).op == Op::kAdd) add = id;
  ASSERT_NE(add, kNoNode);
  const NodeId sub = dag.outputs()[0].second;
  for (SndId producerAlt : snd.altsOf(add)) {
    for (SndId consumerAlt : snd.altsOf(sub)) {
      const bool sameUnit =
          snd.node(producerAlt).unit == snd.node(consumerAlt).unit;
      const auto& chains = snd.chains(producerAlt, consumerAlt);
      if (sameUnit) {
        EXPECT_TRUE(chains.empty());
      } else {
        ASSERT_EQ(chains.size(), 1u);
        EXPECT_EQ(chains[0].hops.size(), 1u);
      }
    }
  }
}

TEST(SplitNodeDag, LeafLoadsHaveChainsFromDataMemory) {
  Env env("arch1");
  const BlockDag dag = fig2Block();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  const NodeId a = dag.findInput("a");
  const SndId leaf = snd.leafOf(a);
  EXPECT_EQ(snd.producerLoc(leaf), env.machine.dataMemoryLoc());
  NodeId add = kNoNode;
  for (NodeId id = 0; id < dag.size(); ++id)
    if (dag.node(id).op == Op::kAdd) add = id;
  ASSERT_NE(add, kNoNode);
  for (SndId alt : snd.altsOf(add)) {
    const auto& chains = snd.chains(leaf, alt);
    ASSERT_FALSE(chains.empty());
    EXPECT_EQ(chains[0].hops.size(), 1u);
  }
}

TEST(SplitNodeDag, ConstantsNeedNoTransfers) {
  Env env("arch1");
  const BlockDag dag = parseBlock(
      "block t { input a; output y; y = a + 7; }");
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  NodeId constNode = kNoNode;
  for (NodeId id = 0; id < dag.size(); ++id)
    if (dag.node(id).op == Op::kConst) constNode = id;
  ASSERT_NE(constNode, kNoNode);
  // Constants are immediates: no transfer node ever moves their value.
  for (SndId id = 0; id < snd.size(); ++id) {
    if (snd.node(id).kind == SndKind::kTransfer)
      EXPECT_NE(snd.node(id).ir, constNode);
  }
}

TEST(SplitNodeDag, MultiHopChainsOnArch3) {
  Env env("arch3");
  // Force a value produced on U1 (RF1) to be consumed on U3 (RF3): only
  // SUB runs on U1 exclusively... use sub feeding mul (mul on U2/U3).
  const BlockDag dag = parseBlock(R"(
    block t { input a, b, c; output y; y = (a - b) * c; }
  )");
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  NodeId sub = kNoNode;
  for (NodeId id = 0; id < dag.size(); ++id)
    if (dag.node(id).op == Op::kSub) sub = id;
  ASSERT_NE(sub, kNoNode);
  const NodeId mul = dag.outputs()[0].second;
  SndId subU1 = kNoSnd;
  for (SndId alt : snd.altsOf(sub))
    if (env.machine.unit(snd.node(alt).unit).name == "U1") subU1 = alt;
  SndId mulU3 = kNoSnd;
  for (SndId alt : snd.altsOf(mul))
    if (env.machine.unit(snd.node(alt).unit).name == "U3") mulU3 = alt;
  ASSERT_NE(subU1, kNoSnd);
  ASSERT_NE(mulU3, kNoSnd);
  const auto& chains = snd.chains(subU1, mulU3);
  ASSERT_GE(chains.size(), 2u);  // via RF2 (two buses) and via DM
  for (const TransferChain& chain : chains) EXPECT_EQ(chain.hops.size(), 2u);
}

TEST(SplitNodeDag, ThrowsWhenOpUnimplementable) {
  Env env("arch1");  // no DIV anywhere
  const BlockDag dag =
      parseBlock("block t { input a, b; output y; y = a / b; }");
  EXPECT_THROW(
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{}),
      Error);
}

TEST(SplitNodeDag, DotContainsSplitAndTransferNodes) {
  Env env("arch1");
  // Bound to a local: SplitNodeDag keeps a pointer to the BlockDag, so a
  // temporary argument would dangle by the time dot() walks it.
  const BlockDag dag = fig2Block();
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, CodegenOptions{});
  const std::string dot = snd.dot();
  EXPECT_NE(dot.find("diamond"), std::string::npos);  // split nodes
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // transfers
}

// --- complex pattern matching (Section III-B) -------------------------

TEST(PatternMatch, FindsMacWhenMachineHasIt) {
  Env env("arch4");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = a * b + c; }");
  const auto matches = matchComplexPatterns(dag, env.dbs.ops);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].machineOp, Op::kMac);
  EXPECT_EQ(matches[0].covers.size(), 2u);
  EXPECT_EQ(matches[0].operands.size(), 3u);
}

TEST(PatternMatch, NoMacWithoutMachineSupport) {
  Env env("arch1");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = a * b + c; }");
  EXPECT_TRUE(matchComplexPatterns(dag, env.dbs.ops).empty());
}

TEST(PatternMatch, MultiUseMultiplyNotFused) {
  Env env("arch4");
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b, c;
      output y, z;
      m = a * b;
      y = m + c;
      z = m - c;   # m has two users
    }
  )");
  EXPECT_TRUE(matchComplexPatterns(dag, env.dbs.ops).empty());
}

TEST(PatternMatch, OutputMultiplyNotFused) {
  Env env("arch4");
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b, c;
      output m, y;
      m = a * b;
      y = m + c;
    }
  )");
  EXPECT_TRUE(matchComplexPatterns(dag, env.dbs.ops).empty());
}

TEST(PatternMatch, MsuOnlyMatchesSubtrahendMultiply) {
  Env env("arch4");
  // arch4 has no MSU; build a machine with one.
  const Machine machine = parseMachine(R"(
    machine M {
      regfile A size 4;
      memory DM size 64 data;
      bus X;
      unit U regfile A { op SUB; op MUL; op MSU; op ADD; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases dbs(machine);
  const BlockDag good =
      parseBlock("block t { input a, b, c; output y; y = c - a * b; }");
  const auto matches = matchComplexPatterns(good, dbs.ops);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].machineOp, Op::kMsu);

  const BlockDag bad =
      parseBlock("block t { input a, b, c; output y; y = a * b - c; }");
  EXPECT_TRUE(matchComplexPatterns(bad, dbs.ops).empty());
}

TEST(PatternMatch, DoubledMultiplyOperandNotFused) {
  // y = m + m (and y = m - m) where m = a * b: users[m] is deduplicated,
  // so m looks single-consumer and fusable — but the non-multiply operand
  // IS the covered multiply, which stops existing as a value once fused.
  // Found by generative fuzzing: matching here aborted materialization
  // with "operand has no producer".
  Env env("arch4");
  const BlockDag add = parseBlock(
      "block t { input a, b; output y; m = a * b; y = m + m; }");
  EXPECT_TRUE(matchComplexPatterns(add, env.dbs.ops).empty());

  const Machine msuMachine = parseMachine(R"(
    machine M {
      regfile A size 4;
      memory DM size 64 data;
      bus X;
      unit U regfile A { op SUB; op MUL; op MSU; op ADD; }
      transfer complete bus X;
    }
  )");
  const MachineDatabases msuDbs(msuMachine);
  const BlockDag sub = parseBlock(
      "block t { input a, b; output y; m = a * b; y = m - m; }");
  EXPECT_TRUE(matchComplexPatterns(sub, msuDbs.ops).empty());
}

TEST(PatternMatch, MacAlternativeAppearsInSplitNodeDag) {
  Env env("arch4");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = a * b + c; }");
  CodegenOptions options;
  const SplitNodeDag snd =
      SplitNodeDag::build(dag, env.machine, env.dbs, options);
  const NodeId add = dag.outputs()[0].second;
  bool hasMac = false;
  for (SndId alt : snd.altsOf(add))
    hasMac |= snd.node(alt).machineOp == Op::kMac;
  EXPECT_TRUE(hasMac);

  CodegenOptions noPatterns;
  noPatterns.enableComplexPatterns = false;
  const SplitNodeDag snd2 =
      SplitNodeDag::build(dag, env.machine, env.dbs, noPatterns);
  for (SndId alt : snd2.altsOf(add))
    EXPECT_NE(snd2.node(alt).machineOp, Op::kMac);
}

}  // namespace
}  // namespace aviv
