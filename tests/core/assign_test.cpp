#include "core/assign_explore.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

struct Env {
  Machine machine;
  MachineDatabases dbs;
  explicit Env(const std::string& name)
      : machine(loadMachine(name)), dbs(machine) {}
};

SplitNodeDag buildSnd(const Env& env, const BlockDag& dag,
                      const CodegenOptions& options) {
  return SplitNodeDag::build(dag, env.machine, env.dbs, options);
}

TEST(AssignExplore, ExhaustiveEnumeratesAllCombinations) {
  Env env("arch1");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c, d; output y; y = (a + b) - c * d; }");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  const SplitNodeDag snd = buildSnd(env, dag, options);
  AssignmentExplorer explorer(snd, options);
  ExploreStats stats;
  const auto assignments = explorer.explore(&stats);
  // 3 (ADD) * 2 (MUL) * 2 (SUB) = 12, Section IV-A.
  EXPECT_EQ(assignments.size(), 12u);
  EXPECT_EQ(stats.completeAssignments, 12u);
  EXPECT_FALSE(stats.capped);
}

TEST(AssignExplore, EveryAssignmentCoversEveryOpNode) {
  Env env("arch1");
  const BlockDag dag = loadBlock("ex2");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  const SplitNodeDag snd = buildSnd(env, dag, options);
  const auto assignments = AssignmentExplorer(snd, options).explore();
  for (const Assignment& a : assignments) {
    std::vector<bool> covered(dag.size(), false);
    for (NodeId id = 0; id < dag.size(); ++id) {
      if (a.chosenAlt[id] == kNoSnd) continue;
      for (NodeId c : snd.node(a.chosenAlt[id]).covers) covered[c] = true;
    }
    for (NodeId id = 0; id < dag.size(); ++id)
      if (isMachineOp(dag.node(id).op))
        EXPECT_TRUE(covered[id]) << dag.describe(id);
  }
}

TEST(AssignExplore, PruningKeepsOnlyMinIncrementalBranches) {
  Env env("arch1");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c, d; output y; y = (a + b) - c * d; }");
  CodegenOptions pruned;
  pruned.assignKeepBest = 1 << 20;
  const SplitNodeDag snd = buildSnd(env, dag, pruned);
  ExploreStats prunedStats;
  const auto prunedResult =
      AssignmentExplorer(snd, pruned).explore(&prunedStats);
  CodegenOptions off = CodegenOptions::heuristicsOff();
  ExploreStats offStats;
  const auto offResult = AssignmentExplorer(snd, off).explore(&offStats);
  EXPECT_LT(prunedResult.size(), offResult.size());
  // Pruning is greedy: its best can never beat the exhaustive best.
  EXPECT_GE(prunedResult.front().cost, offResult.front().cost - 1e-9);
}

TEST(AssignExplore, ResultsSortedByCost) {
  Env env("arch1");
  const BlockDag dag = loadBlock("ex3");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  const SplitNodeDag snd = buildSnd(env, dag, options);
  const auto assignments = AssignmentExplorer(snd, options).explore();
  for (size_t i = 1; i < assignments.size(); ++i)
    EXPECT_LE(assignments[i - 1].cost, assignments[i].cost);
}

TEST(AssignExplore, KeepBestLimitsResults) {
  Env env("arch1");
  const BlockDag dag = loadBlock("ex2");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  options.assignKeepBest = 3;
  const SplitNodeDag snd = buildSnd(env, dag, options);
  EXPECT_EQ(AssignmentExplorer(snd, options).explore().size(), 3u);
}

// Reproduces the Fig 6 scenario: with a COMPL sink executable only on U1,
// the SUB alternative on U2 is pruned (incremental cost 1 vs 0 on U1).
TEST(AssignExplore, Fig6PruningTrace) {
  Env env("arch1");
  const BlockDag dag = parseBlock(R"(
    block fig6 {
      input a, b, c, d;
      output y;
      y = ~((a + b) - c * d);
    }
  )");
  CodegenOptions options;
  options.assignKeepBest = 1 << 20;
  options.assignBeamWidth = 0;
  const SplitNodeDag snd = buildSnd(env, dag, options);
  std::vector<ExploreTraceEntry> trace;
  const auto assignments =
      AssignmentExplorer(snd, options).explore(nullptr, &trace);

  // Find the SUB node's trace entries (first state: only COMPL assigned).
  NodeId subNode = kNoNode;
  for (NodeId id = 0; id < dag.size(); ++id)
    if (dag.node(id).op == Op::kSub) subNode = id;
  ASSERT_NE(subNode, kNoNode);

  double costU1 = -1;
  double costU2 = -1;
  bool keptU1 = false;
  bool keptU2 = false;
  for (const ExploreTraceEntry& entry : trace) {
    if (entry.ir != subNode || entry.stateIdx != 0) continue;
    const std::string unit =
        env.machine.unit(snd.node(entry.alt).unit).name;
    if (unit == "U1") {
      costU1 = entry.incrementalCost;
      keptU1 = entry.kept;
    }
    if (unit == "U2") {
      costU2 = entry.incrementalCost;
      keptU2 = entry.kept;
    }
  }
  // Paper: SUB on U1 costs 0 (no transfer to COMPL on U1); SUB on U2 costs
  // 1 (one transfer); the U2 branch is pruned.
  EXPECT_DOUBLE_EQ(costU1, 0.0);
  EXPECT_DOUBLE_EQ(costU2, 1.0);
  EXPECT_TRUE(keptU1);
  EXPECT_FALSE(keptU2);
  // All surviving assignments put SUB on U1.
  for (const Assignment& a : assignments) {
    EXPECT_EQ(env.machine.unit(snd.node(a.chosenAlt[subNode]).unit).name,
              "U1");
  }
}

TEST(AssignExplore, ComplexAlternativeCoversInteriorNode) {
  Env env("arch4");
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = a * b + c; }");
  CodegenOptions options = CodegenOptions::heuristicsOff();
  const SplitNodeDag snd = buildSnd(env, dag, options);
  const auto assignments = AssignmentExplorer(snd, options).explore();
  bool sawMac = false;
  for (const Assignment& a : assignments) {
    const NodeId add = dag.outputs()[0].second;
    const SndId alt = a.chosenAlt[add];
    if (snd.node(alt).machineOp == Op::kMac) {
      sawMac = true;
      // The fused multiply has no own alternative.
      NodeId mul = kNoNode;
      for (NodeId id = 0; id < dag.size(); ++id)
        if (dag.node(id).op == Op::kMul) mul = id;
      EXPECT_EQ(a.chosenAlt[mul], kNoSnd);
      EXPECT_EQ(a.producerAltOf(mul, snd), alt);
    }
  }
  EXPECT_TRUE(sawMac);
}

TEST(AssignExplore, RegisterAwareCostIncreasesClusteredAssignments) {
  Env env("arch1");
  const BlockDag dag = loadBlock("ex4");
  CodegenOptions plain = CodegenOptions::heuristicsOff();
  CodegenOptions aware = plain;
  aware.registerAwareAssignment = true;
  const SplitNodeDag snd = buildSnd(env, dag, plain);
  const auto plainBest = AssignmentExplorer(snd, plain).explore().front();
  const SplitNodeDag snd2 = buildSnd(env, dag, aware);
  const auto awareBest = AssignmentExplorer(snd2, aware).explore().front();
  // The register-aware cost can only add penalties.
  EXPECT_GE(awareBest.cost, plainBest.cost - 1e-9);
}

}  // namespace
}  // namespace aviv
