#include "core/cover.h"

#include <gtest/gtest.h>

#include "core/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"

namespace aviv {
namespace {

struct Built {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CodegenOptions options;
  CoreResult result;
};

Built buildAndCover(const std::string& block, const std::string& machineName,
                    int regs, CodegenOptions options = {}) {
  BlockDag dag = loadBlock(block);
  Machine machine = loadMachine(machineName).withRegisterCount(regs);
  MachineDatabases dbs(machine);
  CoreResult result = coverBlock(dag, machine, dbs, options);
  return {std::move(dag), std::move(machine), std::move(dbs), options,
          std::move(result)};
}

TEST(Covering, ScheduleIsValidOnAllShippedBlocks) {
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(block);
    const Machine machine = loadMachine("arch1");
    const MachineDatabases dbs(machine);
    const CoreResult result = coverBlock(dag, machine, dbs, CodegenOptions{});
    // verifySchedule is run inside; assert basic shape here.
    EXPECT_GT(result.schedule.numInstructions(), 0) << block;
    EXPECT_EQ(result.stats.cover.spillsInserted, 0) << block;
  }
}

TEST(Covering, EveryActiveNodeScheduledExactlyOnce) {
  const Built built = buildAndCover("ex2", "arch1", 4);
  std::vector<int> count(built.result.graph.size(), 0);
  for (const auto& instr : built.result.schedule.instrs)
    for (AgId id : instr) count[id] += 1;
  for (AgId id = 0; id < built.result.graph.size(); ++id)
    EXPECT_EQ(count[id], built.result.graph.node(id).deleted() ? 0 : 1);
}

TEST(Covering, TwoRegisterConfigurationsInsertSpills) {
  // The paper's Ex6/Ex7 scenario: Ex4/Ex5 rerun with 2 registers per file
  // lead to spills (the 4-register runs needed none).
  const Built ex6 = buildAndCover("ex4", "arch1", 2);
  const Built ex7 = buildAndCover("ex5", "arch1", 2);
  EXPECT_GT(ex6.result.stats.cover.spillsInserted, 0);
  EXPECT_GT(ex7.result.stats.cover.spillsInserted, 0);
  // And the code is correspondingly longer than with 4 registers.
  const Built ex4 = buildAndCover("ex4", "arch1", 4);
  const Built ex5 = buildAndCover("ex5", "arch1", 4);
  EXPECT_GT(ex6.result.schedule.numInstructions(),
            ex4.result.schedule.numInstructions());
  EXPECT_GT(ex7.result.schedule.numInstructions(),
            ex5.result.schedule.numInstructions());
}

TEST(Covering, SpillInsertsStoreAndReloads) {
  const Built built = buildAndCover("ex4", "arch1", 2);
  int stores = 0;
  int reloads = 0;
  for (AgId id = 0; id < built.result.graph.size(); ++id) {
    const AgNode& n = built.result.graph.node(id);
    stores += n.kind == AgKind::kSpillStore ? 1 : 0;
    reloads += n.kind == AgKind::kSpillLoad ? 1 : 0;
  }
  EXPECT_EQ(stores, built.result.stats.cover.spillsInserted);
  EXPECT_GE(reloads, stores);  // at least one reload per spilled value
}

TEST(Covering, HeuristicsOffNeverWorseThanHeuristics) {
  for (const char* block : {"ex1", "ex2", "ex3"}) {
    const Built on = buildAndCover(block, "arch1", 4,
                                   CodegenOptions::heuristicsOn());
    const Built off = buildAndCover(block, "arch1", 4,
                                    CodegenOptions::heuristicsOff());
    EXPECT_LE(off.result.schedule.numInstructions(),
              on.result.schedule.numInstructions())
        << block;
  }
}

TEST(Covering, CodeSizeLowerBoundFromUnitWork) {
  // #instructions >= ops that must run on the only MUL-capable units, etc.
  const Built built = buildAndCover("ex2", "arch1", 4);
  size_t transfers = 0;
  for (AgId id = 0; id < built.result.graph.size(); ++id)
    if (!built.result.graph.node(id).deleted() &&
        built.result.graph.node(id).isTransferish())
      ++transfers;
  // Single bus, capacity 1: every transfer needs its own cycle slot.
  EXPECT_GE(
      static_cast<size_t>(built.result.schedule.numInstructions()),
      transfers);
}

TEST(Covering, SameNameAliasCompilesToNothing) {
  // An output aliased to the identically-named input needs no code when
  // outputs live in memory.
  const BlockDag dag = parseBlock("block t { input a; output a; a = a; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  CodegenOptions options;
  options.outputsToMemory = true;
  const CoreResult result = coverBlock(dag, machine, dbs, options);
  EXPECT_EQ(result.schedule.numInstructions(), 0);
}

TEST(Covering, RenamedPassThroughCopiesThroughRegister) {
  // y = a with outputs in memory: load a, store into y's cell.
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  CodegenOptions options;
  options.outputsToMemory = true;
  const CoreResult result = coverBlock(dag, machine, dbs, options);
  EXPECT_EQ(result.schedule.numInstructions(), 2);
}

TEST(Covering, PassThroughOutputInRegistersEmitsLoad) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult result = coverBlock(dag, machine, dbs, CodegenOptions{});
  EXPECT_EQ(result.schedule.numInstructions(), 1);  // one variable load
}

TEST(Covering, ConstantOutputRoutedThroughPoolCell) {
  const BlockDag dag = parseBlock("block t { output y; y = 42; }");
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const CoreResult result = coverBlock(dag, machine, dbs, CodegenOptions{});
  // One pool load into a register binds the output.
  EXPECT_EQ(result.schedule.numInstructions(), 1);
  ASSERT_EQ(result.graph.constPool().size(), 1u);
  EXPECT_EQ(result.graph.constPool().begin()->second, 42);
}

TEST(Covering, SingleRegisterBankRejectedUpfront) {
  const BlockDag dag = loadBlock("ex1");
  const Machine machine = loadMachine("arch1").withRegisterCount(1);
  const MachineDatabases dbs(machine);
  EXPECT_THROW(coverBlock(dag, machine, dbs, CodegenOptions{}), Error);
}

TEST(Covering, ConstraintNeverViolatedOnArch4) {
  // arch4 forbids U2.MUL and U3.MUL in one instruction; ex5 is MUL-heavy.
  const Built built = buildAndCover("ex5", "arch4", 4);
  const UnitId u2 = *built.machine.findUnit("U2");
  const UnitId u3 = *built.machine.findUnit("U3");
  for (const auto& instr : built.result.schedule.instrs) {
    bool mulU2 = false;
    bool mulU3 = false;
    for (AgId id : instr) {
      const AgNode& n = built.result.graph.node(id);
      if (n.kind != AgKind::kOp || n.machineOp != Op::kMul) continue;
      mulU2 |= n.unit == u2;
      mulU3 |= n.unit == u3;
    }
    EXPECT_FALSE(mulU2 && mulU3);
  }
}

TEST(Covering, MacReducesOrMatchesCodeSize) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b, c, d, e, f;
      output y, z;
      y = a * b + c;
      z = d * e + f;
    }
  )");
  const Machine machine = loadMachine("arch4");
  const MachineDatabases dbs(machine);
  CodegenOptions with;
  CodegenOptions without;
  without.enableComplexPatterns = false;
  const CoreResult rWith = coverBlock(dag, machine, dbs, with);
  const CoreResult rWithout = coverBlock(dag, machine, dbs, without);
  EXPECT_LE(rWith.schedule.numInstructions(),
            rWithout.schedule.numInstructions());
}

TEST(Covering, StatsAreFilled) {
  const Built built =
      buildAndCover("ex3", "arch1", 4, CodegenOptions::heuristicsOn());
  EXPECT_EQ(built.result.stats.irNodes, 11u);
  EXPECT_GT(built.result.stats.sndNodes, built.result.stats.irNodes);
  EXPECT_GT(built.result.stats.explore.statesExpanded, 0u);
  EXPECT_GT(built.result.stats.assignmentsCovered, 0u);
  EXPECT_GT(built.result.stats.cover.cliquesGenerated, 0u);
  EXPECT_GE(built.result.stats.seconds, 0.0);
}

}  // namespace
}  // namespace aviv
