#include "core/clique.h"

#include <gtest/gtest.h>

#include "core/assign_explore.h"
#include "core/assigned.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "support/rng.h"

namespace aviv {
namespace {

void expectSameCliques(const ParallelismMatrix& matrix,
                       const DynBitset& active) {
  CliqueGenStats stats;
  const auto fig8 = generateMaximalCliques(matrix, active, 100000, &stats);
  const auto reference = referenceMaximalCliques(matrix, active);
  ASSERT_EQ(fig8.size(), reference.size());
  for (size_t i = 0; i < fig8.size(); ++i) EXPECT_EQ(fig8[i], reference[i]);
}

TEST(CliqueGen, MatchesBronKerboschOnRealBlocks) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  for (const char* block : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(block);
    const CodegenOptions options;
    const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
    const auto assignment =
        AssignmentExplorer(snd, options).explore().front();
    const AssignedGraph graph =
        AssignedGraph::materialize(snd, assignment, options);
    const ParallelismMatrix matrix(graph, /*levelWindow=*/-1);
    DynBitset active(graph.size(), true);
    expectSameCliques(matrix, active);
  }
}

// Property test on random graphs: build a synthetic AssignedGraph-like
// parallelism structure by generating random matrices directly. Since
// ParallelismMatrix requires a graph, we instead probe the generator
// through random *subsets* of a real graph's nodes.
TEST(CliqueGen, MatchesBronKerboschOnRandomActiveSubsets) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex4");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);

  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    DynBitset active(graph.size());
    for (size_t i = 0; i < graph.size(); ++i)
      if (rng.chance(0.6)) active.set(i);
    expectSameCliques(matrix, active);
  }
}

TEST(CliqueGen, EveryNodeCoveredByAtLeastOneClique) {
  const Machine machine = loadMachine("arch2");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex2");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  const auto cliques = generateMaximalCliques(matrix, active, 100000);
  DynBitset covered(graph.size());
  for (const DynBitset& clique : cliques) covered |= clique;
  EXPECT_EQ(covered, active);
}

TEST(CliqueGen, CliquesArePairwiseParallelAndMaximal) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex3");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  const auto cliques = generateMaximalCliques(matrix, active, 100000);
  ASSERT_FALSE(cliques.empty());
  for (const DynBitset& clique : cliques) {
    const auto members = clique.toIndices();
    for (size_t i = 0; i < members.size(); ++i)
      for (size_t j = i + 1; j < members.size(); ++j)
        EXPECT_TRUE(matrix.parallel(static_cast<AgId>(members[i]),
                                    static_cast<AgId>(members[j])));
    // Maximality: no outside node parallel with every member.
    for (size_t n = 0; n < graph.size(); ++n) {
      if (clique.test(n) || !active.test(n)) continue;
      bool withAll = true;
      for (size_t m : members)
        withAll &= matrix.parallel(static_cast<AgId>(n),
                                   static_cast<AgId>(m));
      EXPECT_FALSE(withAll) << "clique not maximal: can add " << n;
    }
  }
}

TEST(CliqueGen, LevelWindowReducesCliqueCount) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex5");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  DynBitset active(graph.size(), true);

  const ParallelismMatrix full(graph, -1);
  const ParallelismMatrix windowed(graph, 1);
  CliqueGenStats fullStats;
  CliqueGenStats windowedStats;
  (void)generateMaximalCliques(full, active, 1000000, &fullStats);
  (void)generateMaximalCliques(windowed, active, 1000000, &windowedStats);
  EXPECT_LE(windowedStats.emitted, fullStats.emitted);
}

TEST(CliqueGen, CapSetsFlag) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag = loadBlock("ex5");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  DynBitset active(graph.size(), true);
  CliqueGenStats stats;
  const auto cliques = generateMaximalCliques(matrix, active, 2, &stats);
  EXPECT_LE(cliques.size(), 2u);
  EXPECT_TRUE(stats.capped);
}

TEST(CliqueGen, SingleNodeGraphGivesSingletonClique) {
  const Machine machine = loadMachine("arch1");
  const MachineDatabases dbs(machine);
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = ~a; }");
  const CodegenOptions options;
  const SplitNodeDag snd = SplitNodeDag::build(dag, machine, dbs, options);
  const auto assignment = AssignmentExplorer(snd, options).explore().front();
  const AssignedGraph graph =
      AssignedGraph::materialize(snd, assignment, options);
  const ParallelismMatrix matrix(graph, -1);
  // Load then compl: serial chain -> two singleton cliques.
  DynBitset active(graph.size(), true);
  const auto cliques = generateMaximalCliques(matrix, active, 100);
  EXPECT_EQ(cliques.size(), 2u);
  for (const auto& clique : cliques) EXPECT_EQ(clique.count(), 1u);
}

}  // namespace
}  // namespace aviv
