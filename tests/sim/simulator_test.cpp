#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/codegen.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "asmgen/encode.h"
#include "isdl/parser.h"
#include "regalloc/regalloc.h"
#include "support/rng.h"

namespace aviv {
namespace {

struct Runnable {
  BlockDag dag;
  Machine machine;
  MachineDatabases dbs;
  CoreResult core;
  RegAssignment regs;
  SymbolTable symbols;
  CodeImage image;

  Runnable(const std::string& source, const std::string& machineName,
           CodegenOptions options = {})
      : dag(parseBlock(source)),
        machine(loadMachine(machineName)),
        dbs(machine),
        core(coverBlock(dag, machine, dbs, options)),
        regs(allocateRegisters(core.graph, core.schedule)),
        image(encodeBlock(core.graph, core.schedule, regs, symbols)) {}
};

TEST(Simulator, InitialStateShapes) {
  const Machine machine = loadMachine("arch1");
  const Simulator sim(machine);
  const MachineState state = sim.initialState();
  ASSERT_EQ(state.regs.size(), 3u);
  for (const auto& bank : state.regs) EXPECT_EQ(bank.size(), 4u);
  EXPECT_EQ(state.mem.size(), 256u);
}

TEST(Simulator, WriteVarsPlacesValues) {
  Runnable r("block t { input a, b; output y; y = a + b; }", "arch1");
  const Simulator sim(r.machine);
  MachineState state = sim.initialState();
  sim.writeVars(state, r.symbols, {{"a", 11}, {"b", 31}, {"unknown", 5}});
  EXPECT_EQ(state.mem[static_cast<size_t>(r.symbols.lookup("a"))], 11);
  EXPECT_EQ(state.mem[static_cast<size_t>(r.symbols.lookup("b"))], 31);
}

TEST(Simulator, ExecutesSimpleAdd) {
  Runnable r("block t { input a, b; output y; y = a + b; }", "arch1");
  const Simulator sim(r.machine);
  const auto out = sim.runBlockFresh(r.image, r.symbols, {{"a", 4}, {"b", 5}});
  EXPECT_EQ(out.at("y"), 9);
}

TEST(Simulator, CountsCycles) {
  Runnable r("block t { input a, b; output y; y = a + b; }", "arch1");
  const Simulator sim(r.machine);
  size_t cycles = 0;
  (void)sim.runBlockFresh(r.image, r.symbols, {{"a", 1}, {"b", 2}}, &cycles);
  EXPECT_EQ(cycles, static_cast<size_t>(r.image.numInstructions()));
}

TEST(Simulator, ParallelSlotsReadPreInstructionState) {
  // A VLIW instruction whose transfer reads a register another slot writes
  // in the same cycle must see the OLD value. We can't easily force that
  // exact image; instead run a swap-like kernel over random inputs and rely
  // on reference equivalence (the property that would break).
  Runnable r(R"(
    block t {
      input a, b;
      output y, z;
      y = a - b;
      z = b - a;
    }
  )",
             "arch1");
  const Simulator sim(r.machine);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const int64_t a = rng.intIn(-50, 50);
    const int64_t b = rng.intIn(-50, 50);
    const auto out = sim.runBlockFresh(r.image, r.symbols, {{"a", a}, {"b", b}});
    EXPECT_EQ(out.at("y"), a - b);
    EXPECT_EQ(out.at("z"), b - a);
  }
}

TEST(Simulator, MemoryOutputsReadBack) {
  CodegenOptions options;
  options.outputsToMemory = true;
  Runnable r("block t { input a; output y; y = a * a; }", "arch1", options);
  const Simulator sim(r.machine);
  const auto out = sim.runBlockFresh(r.image, r.symbols, {{"a", 7}});
  EXPECT_EQ(out.at("y"), 49);
}

TEST(Simulator, SpilledCodeStillCorrect) {
  const BlockDag dag = loadBlock("ex4");
  const Machine machine = loadMachine("arch1").withRegisterCount(2);
  const MachineDatabases dbs(machine);
  const CoreResult core = coverBlock(dag, machine, dbs, CodegenOptions{});
  ASSERT_GT(core.stats.cover.spillsInserted, 0);
  const RegAssignment regs = allocateRegisters(core.graph, core.schedule);
  SymbolTable symbols;
  const CodeImage image = encodeBlock(core.graph, core.schedule, regs, symbols);
  const Simulator sim(machine);
  Rng rng(77);
  for (int i = 0; i < 10; ++i) {
    std::map<std::string, int64_t> inputs;
    for (const std::string& name : dag.inputNames())
      inputs[name] = rng.intIn(-100, 100);
    EXPECT_EQ(sim.runBlockFresh(image, symbols, inputs),
              evalDagOutputs(dag, inputs));
  }
}

TEST(Simulator, MacComplexInstructionExecutes) {
  Runnable r("block t { input a, b, c; output y; y = a * b + c; }", "arch4");
  // Ensure a MAC actually got selected.
  bool hasMac = false;
  for (const EncInstr& instr : r.image.instrs)
    for (const EncOp& op : instr.ops) hasMac |= op.op == Op::kMac;
  EXPECT_TRUE(hasMac);
  const Simulator sim(r.machine);
  const auto out =
      sim.runBlockFresh(r.image, r.symbols, {{"a", 3}, {"b", 4}, {"c", 5}});
  EXPECT_EQ(out.at("y"), 17);
}

TEST(Simulator, MultiBusMachineExecutes) {
  Runnable r("block t { input a, b, c; output y; y = (a - b) * c; }",
             "arch3");
  const Simulator sim(r.machine);
  const auto out =
      sim.runBlockFresh(r.image, r.symbols, {{"a", 9}, {"b", 4}, {"c", 3}});
  EXPECT_EQ(out.at("y"), 15);
}

TEST(Simulator, TraceLogsEverySlot) {
  Runnable r("block t { input a, b; output y; y = (a + b) * 3; }", "arch1");
  const Simulator sim(r.machine);
  MachineState state = sim.initialState();
  sim.writeVars(state, r.symbols, {{"a", 2}, {"b", 5}});
  std::ostringstream trace;
  (void)sim.runBlock(r.image, state, nullptr, &trace);
  const std::string log = trace.str();
  // Every cycle appears, op mnemonics and concrete values included.
  for (int c = 0; c < r.image.numInstructions(); ++c)
    EXPECT_NE(log.find("cycle " + std::to_string(c) + " "),
              std::string::npos)
        << log;
  EXPECT_NE(log.find("add 2, 5"), std::string::npos) << log;
  EXPECT_NE(log.find("mul 7, 3"), std::string::npos) << log;
  EXPECT_NE(log.find("{a}"), std::string::npos) << log;
}

}  // namespace
}  // namespace aviv
