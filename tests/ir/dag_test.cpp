#include "ir/dag.h"

#include <gtest/gtest.h>

namespace aviv {
namespace {

TEST(BlockDag, BuildSmallDag) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId sum = dag.addOp(Op::kAdd, {a, b});
  dag.markOutput("y", sum);
  dag.verify();

  EXPECT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.numOpNodes(), 1u);
  EXPECT_EQ(dag.numLeafNodes(), 2u);
  ASSERT_EQ(dag.outputs().size(), 1u);
  EXPECT_EQ(dag.outputs()[0].first, "y");
  EXPECT_EQ(dag.outputs()[0].second, sum);
}

TEST(BlockDag, InputsAreUniqueByName) {
  BlockDag dag("t");
  EXPECT_EQ(dag.addInput("a"), dag.addInput("a"));
  EXPECT_NE(dag.addInput("a"), dag.addInput("b"));
  EXPECT_EQ(dag.findInput("a"), 0u);
  EXPECT_EQ(dag.findInput("zz"), kNoNode);
}

TEST(BlockDag, CseDeduplicatesStructurallyEqualNodes) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId s1 = dag.addOp(Op::kAdd, {a, b});
  const NodeId s2 = dag.addOp(Op::kAdd, {a, b});
  EXPECT_EQ(s1, s2);
  // Commutative ops dedupe across operand order.
  EXPECT_EQ(dag.addOp(Op::kAdd, {b, a}), s1);
  // Non-commutative ops do not.
  EXPECT_NE(dag.addOp(Op::kSub, {a, b}), dag.addOp(Op::kSub, {b, a}));
}

TEST(BlockDag, CseDeduplicatesConstants) {
  BlockDag dag("t");
  EXPECT_EQ(dag.addConst(7), dag.addConst(7));
  EXPECT_NE(dag.addConst(7), dag.addConst(8));
}

TEST(BlockDag, NoCseKeepsDuplicates) {
  BlockDag dag("t", /*cse=*/false);
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  EXPECT_NE(dag.addOp(Op::kAdd, {a, b}), dag.addOp(Op::kAdd, {a, b}));
  EXPECT_NE(dag.addConst(7), dag.addConst(7));
}

TEST(BlockDag, UsersComputation) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId sum = dag.addOp(Op::kAdd, {a, b});
  const NodeId prod = dag.addOp(Op::kMul, {sum, a});
  dag.markOutput("y", prod);

  const auto users = dag.computeUsers();
  EXPECT_EQ(users[a], (std::vector<NodeId>{sum, prod}));
  EXPECT_EQ(users[b], (std::vector<NodeId>{sum}));
  EXPECT_EQ(users[sum], (std::vector<NodeId>{prod}));
  EXPECT_TRUE(users[prod].empty());
}

TEST(BlockDag, SameNodeUsedTwiceListedOnceInUsers) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId sq = dag.addOp(Op::kMul, {a, a});
  const auto users = dag.computeUsers();
  EXPECT_EQ(users[a], (std::vector<NodeId>{sq}));
}

TEST(BlockDag, Levels) {
  //     a   b
  //      \ /
  //      add      c
  //         \    /
  //          mul
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId add = dag.addOp(Op::kAdd, {a, b});
  const NodeId c = dag.addInput("c");
  const NodeId mul = dag.addOp(Op::kMul, {add, c});
  dag.markOutput("y", mul);

  const auto top = dag.levelsFromTop();
  EXPECT_EQ(top[mul], 0);
  EXPECT_EQ(top[add], 1);
  EXPECT_EQ(top[c], 1);
  EXPECT_EQ(top[a], 2);

  const auto bottom = dag.levelsFromBottom();
  EXPECT_EQ(bottom[a], 0);
  EXPECT_EQ(bottom[c], 0);
  EXPECT_EQ(bottom[add], 1);
  EXPECT_EQ(bottom[mul], 2);
}

TEST(BlockDag, RemarkingOutputReplacesBinding) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  dag.markOutput("y", a);
  dag.markOutput("y", b);
  ASSERT_EQ(dag.outputs().size(), 1u);
  EXPECT_EQ(dag.outputs()[0].second, b);
}

TEST(BlockDag, DescribeFormatsNodes) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId c = dag.addConst(3);
  const NodeId s = dag.addOp(Op::kAdd, {a, c});
  EXPECT_EQ(dag.describe(a), "n0:INPUT(a)");
  EXPECT_EQ(dag.describe(c), "n1:CONST(3)");
  EXPECT_EQ(dag.describe(s), "n2:ADD(n0,n1)");
}

TEST(BlockDag, DotOutputMentionsAllNodes) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId c = dag.addConst(3);
  dag.markOutput("y", dag.addOp(Op::kAdd, {a, c}));
  const std::string dot = dag.dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ADD"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("out_y"), std::string::npos);
}

}  // namespace
}  // namespace aviv
