#include "ir/passes.h"

#include <gtest/gtest.h>

#include "ir/interp.h"
#include "ir/parser.h"
#include "support/rng.h"

namespace aviv {
namespace {

TEST(Passes, FoldsConstantExpressions) {
  const BlockDag dag =
      parseBlock("block t { output y; y = (2 + 3) * 4; }");
  const BlockDag folded = foldConstants(dag);
  ASSERT_EQ(folded.outputs().size(), 1u);
  const DagNode& out = folded.node(folded.outputs()[0].second);
  EXPECT_EQ(out.op, Op::kConst);
  EXPECT_EQ(out.value, 20);
}

TEST(Passes, AppliesAlgebraicIdentities) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a;
      output y1, y2, y3, y4, y5;
      y1 = a + 0;
      y2 = a * 1;
      y3 = a * 0;
      y4 = a - a;
      y5 = a ^ a;
    }
  )");
  const BlockDag folded = foldConstants(dag);
  auto outNode = [&](const std::string& name) -> const DagNode& {
    for (const auto& [n, id] : folded.outputs())
      if (n == name) return folded.node(id);
    ADD_FAILURE() << "no output " << name;
    return folded.node(0);
  };
  EXPECT_EQ(outNode("y1").op, Op::kInput);
  EXPECT_EQ(outNode("y2").op, Op::kInput);
  EXPECT_EQ(outNode("y3").op, Op::kConst);
  EXPECT_EQ(outNode("y3").value, 0);
  EXPECT_EQ(outNode("y4").op, Op::kConst);
  EXPECT_EQ(outNode("y5").op, Op::kConst);
}

TEST(Passes, DceRemovesUnreachableOps) {
  BlockDag dag("t", /*cse=*/false);
  const NodeId a = dag.addInput("a");
  const NodeId used = dag.addOp(Op::kAdd, {a, a});
  dag.addOp(Op::kMul, {a, a});  // dead
  dag.markOutput("y", used);

  const BlockDag cleaned = eliminateDeadCode(dag);
  EXPECT_EQ(cleaned.numOpNodes(), 1u);
  // Inputs survive even if dead.
  EXPECT_NE(cleaned.findInput("a"), kNoNode);
}

TEST(Passes, DceKeepsDeadInputsForStableSignature) {
  BlockDag dag("t");
  dag.addInput("unused");
  dag.markOutput("y", dag.addConst(1));
  const BlockDag cleaned = eliminateDeadCode(dag);
  EXPECT_NE(cleaned.findInput("unused"), kNoNode);
}

TEST(Passes, OptimizeReachesFixpoint) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a;
      output y;
      t1 = a * 0;      # -> 0
      t2 = t1 + a;     # -> a
      y = t2 * 1;      # -> a
    }
  )");
  const BlockDag opt = optimize(dag);
  const DagNode& out = opt.node(opt.outputs()[0].second);
  EXPECT_EQ(out.op, Op::kInput);
  EXPECT_EQ(out.name, "a");
}

// Property: passes preserve semantics on random inputs for every shipped
// benchmark block.
TEST(Passes, PreserveSemanticsOnShippedBlocks) {
  Rng rng(99);
  for (const std::string name : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(name);
    const BlockDag opt = optimize(dag);
    for (int trial = 0; trial < 20; ++trial) {
      std::map<std::string, int64_t> inputs;
      for (const std::string& in : dag.inputNames())
        inputs[in] = rng.intIn(-100, 100);
      EXPECT_EQ(evalDagOutputs(dag, inputs), evalDagOutputs(opt, inputs))
          << name;
    }
  }
}

TEST(Passes, FoldingNeverGrowsTheDag) {
  for (const std::string name : {"ex1", "ex2", "ex3", "ex4", "ex5"}) {
    const BlockDag dag = loadBlock(name);
    EXPECT_LE(foldConstants(dag).size(), dag.size()) << name;
    EXPECT_LE(optimize(dag).size(), dag.size()) << name;
  }
}

TEST(StrengthReduce, MulByPowerOfTwoBecomesShift) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 8; }");
  const BlockDag reduced =
      strengthReduce(dag, [](Op op) { return op == Op::kShl; });
  const DagNode& out = reduced.node(reduced.outputs()[0].second);
  ASSERT_EQ(out.op, Op::kShl);
  EXPECT_EQ(reduced.node(out.operands[1]).value, 3);
  // Semantics preserved.
  for (int64_t a : {-7, 0, 13}) {
    EXPECT_EQ(evalDagOutputs(reduced, {{"a", a}}).at("y"),
              evalDagOutputs(dag, {{"a", a}}).at("y"));
  }
}

TEST(StrengthReduce, ConstantOnEitherSide) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = 16 * a; }");
  const BlockDag reduced =
      strengthReduce(dag, [](Op op) { return op == Op::kShl; });
  EXPECT_EQ(reduced.node(reduced.outputs()[0].second).op, Op::kShl);
}

TEST(StrengthReduce, MulByTwoBecomesAddWithoutShifter) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 2; }");
  const BlockDag reduced =
      strengthReduce(dag, [](Op op) { return op == Op::kAdd; });
  const DagNode& out = reduced.node(reduced.outputs()[0].second);
  ASSERT_EQ(out.op, Op::kAdd);
  EXPECT_EQ(out.operands[0], out.operands[1]);
  EXPECT_EQ(evalDagOutputs(reduced, {{"a", 21}}).at("y"), 42);
}

TEST(StrengthReduce, NonPowerAndDivLeftAlone) {
  const BlockDag dag = parseBlock(
      "block t { input a; output y, z; y = a * 6; z = a / 4; }");
  const BlockDag reduced = strengthReduce(dag, [](Op) { return true; });
  for (const auto& [name, id] : reduced.outputs()) {
    const Op op = reduced.node(id).op;
    if (name == "y") EXPECT_EQ(op, Op::kMul);
    if (name == "z") EXPECT_EQ(op, Op::kDiv);  // shr != trunc div for < 0
  }
}

TEST(StrengthReduce, NoShifterNoAddMeansNoChange) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a * 4; }");
  const BlockDag reduced = strengthReduce(dag, [](Op) { return false; });
  EXPECT_EQ(reduced.node(reduced.outputs()[0].second).op, Op::kMul);
}

TEST(StrengthReduce, PreservesSemanticsOnRandomInputs) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b;
      output y;
      y = (a * 32 + b * 2) * (a * 5);
    }
  )");
  const BlockDag reduced = strengthReduce(dag, [](Op) { return true; });
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::map<std::string, int64_t> inputs = {
        {"a", rng.intIn(-1000, 1000)}, {"b", rng.intIn(-1000, 1000)}};
    EXPECT_EQ(evalDagOutputs(reduced, inputs), evalDagOutputs(dag, inputs));
  }
}

}  // namespace
}  // namespace aviv
