#include "ir/interp.h"

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"

namespace aviv {
namespace {

TEST(Interp, EvaluatesAllNodes) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId c = dag.addConst(10);
  const NodeId sum = dag.addOp(Op::kAdd, {a, c});
  const NodeId prod = dag.addOp(Op::kMul, {sum, sum});
  dag.markOutput("y", prod);

  const auto values = evalDag(dag, {{"a", 2}});
  EXPECT_EQ(values[a], 2);
  EXPECT_EQ(values[c], 10);
  EXPECT_EQ(values[sum], 12);
  EXPECT_EQ(values[prod], 144);
}

TEST(Interp, MissingInputThrows) {
  BlockDag dag("t");
  dag.markOutput("y", dag.addInput("a"));
  EXPECT_THROW(evalDag(dag, {}), Error);
}

TEST(Interp, ExtraInputsIgnored) {
  BlockDag dag("t");
  dag.markOutput("y", dag.addInput("a"));
  EXPECT_EQ(evalDagOutputs(dag, {{"a", 1}, {"zzz", 9}}).at("y"), 1);
}

TEST(Interp, UnaryAndTernaryOperandRouting) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId c = dag.addInput("c");
  dag.markOutput("neg", dag.addOp(Op::kNeg, {a}));
  dag.markOutput("mac", dag.addOp(Op::kMac, {a, b, c}));
  const auto out = evalDagOutputs(dag, {{"a", 3}, {"b", 4}, {"c", 5}});
  EXPECT_EQ(out.at("neg"), -3);
  EXPECT_EQ(out.at("mac"), 17);
}

// Property: interpretation is deterministic and pure.
TEST(Interp, DeterministicOverRandomInputs) {
  BlockDag dag("t");
  const NodeId a = dag.addInput("a");
  const NodeId b = dag.addInput("b");
  const NodeId e1 = dag.addOp(Op::kXor, {a, b});
  const NodeId e2 = dag.addOp(Op::kMul, {e1, a});
  dag.markOutput("y", dag.addOp(Op::kSub, {e2, b}));

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const int64_t av = rng.intIn(-1000, 1000);
    const int64_t bv = rng.intIn(-1000, 1000);
    const auto r1 = evalDagOutputs(dag, {{"a", av}, {"b", bv}});
    const auto r2 = evalDagOutputs(dag, {{"a", av}, {"b", bv}});
    EXPECT_EQ(r1.at("y"), r2.at("y"));
    EXPECT_EQ(r1.at("y"), ((av ^ bv) * av) - bv);
  }
}

TEST(InterpProgram, RunawayLoopHitsStepLimit) {
  Program program("spin");
  BlockDag dag("spin_block");
  dag.markOutput("x", dag.addConst(1));
  Terminator term;
  term.kind = TermKind::kJump;
  term.target = "spin_block";
  program.addBlock(std::move(dag), term);
  EXPECT_THROW(evalProgram(program, {}, /*maxSteps=*/10), Error);
}

}  // namespace
}  // namespace aviv
