#include "ir/parser.h"

#include <gtest/gtest.h>

#include "ir/interp.h"
#include "support/error.h"
#include "support/io.h"

namespace aviv {
namespace {

TEST(BlockParser, ParsesSimpleBlock) {
  const BlockDag dag = parseBlock(R"(
    block ex {
      input a, b;
      output y;
      y = a + b * 2;
    }
  )");
  EXPECT_EQ(dag.name(), "ex");
  // a, b, 2, mul, add
  EXPECT_EQ(dag.size(), 5u);
  const auto out = evalDagOutputs(dag, {{"a", 1}, {"b", 3}});
  EXPECT_EQ(out.at("y"), 7);
}

TEST(BlockParser, PrecedenceMulOverAdd) {
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = a + b * c; }");
  EXPECT_EQ(evalDagOutputs(dag, {{"a", 1}, {"b", 2}, {"c", 3}}).at("y"), 7);
}

TEST(BlockParser, PrecedenceShiftBelowAdd) {
  const BlockDag dag =
      parseBlock("block t { input a; output y; y = a << 1 + 1; }");
  // 1+1 binds tighter: a << 2
  EXPECT_EQ(evalDagOutputs(dag, {{"a", 1}}).at("y"), 4);
}

TEST(BlockParser, ParenthesesOverridePrecedence) {
  const BlockDag dag = parseBlock(
      "block t { input a, b, c; output y; y = (a + b) * c; }");
  EXPECT_EQ(evalDagOutputs(dag, {{"a", 1}, {"b", 2}, {"c", 3}}).at("y"), 9);
}

TEST(BlockParser, UnaryOperators) {
  const BlockDag dag = parseBlock(
      "block t { input a; output y, z; y = -a; z = ~a; }");
  const auto out = evalDagOutputs(dag, {{"a", 5}});
  EXPECT_EQ(out.at("y"), -5);
  EXPECT_EQ(out.at("z"), ~int64_t{5});
}

TEST(BlockParser, Intrinsics) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b, c;
      output y, z, w;
      y = min(a, b);
      z = abs(c);
      w = mac(a, b, c);
    }
  )");
  const auto out = evalDagOutputs(dag, {{"a", 4}, {"b", -2}, {"c", -9}});
  EXPECT_EQ(out.at("y"), -2);
  EXPECT_EQ(out.at("z"), 9);
  EXPECT_EQ(out.at("w"), 4 * -2 + -9);
}

TEST(BlockParser, ComparisonsAndBitwise) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a, b;
      output c, d;
      c = a < b;
      d = (a & b) | (a ^ b);
    }
  )");
  const auto out = evalDagOutputs(dag, {{"a", 6}, {"b", 3}});
  EXPECT_EQ(out.at("c"), 0);
  EXPECT_EQ(out.at("d"), 7);
}

TEST(BlockParser, TempsAndRebinding) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a;
      output y;
      t = a + 1;
      t = t * 2;   # rebind
      y = t;
    }
  )");
  EXPECT_EQ(evalDagOutputs(dag, {{"a", 3}}).at("y"), 8);
}

TEST(BlockParser, RepeatExpandsWithIndexSubstitution) {
  const BlockDag dag = parseBlock(R"(
    block t {
      input a0, a1, k;
      output y0, y1;
      repeat 2 { y$i = a$i * k + $i; }
    }
  )");
  const auto out = evalDagOutputs(dag, {{"a0", 2}, {"a1", 3}, {"k", 10}});
  EXPECT_EQ(out.at("y0"), 20);
  EXPECT_EQ(out.at("y1"), 31);
}

TEST(BlockParser, HexLiterals) {
  const BlockDag dag = parseBlock("block t { output y; y = 0x10 + 1; }");
  EXPECT_EQ(evalDagOutputs(dag, {}).at("y"), 17);
}

TEST(BlockParser, ErrorOnUndefinedValue) {
  EXPECT_THROW(parseBlock("block t { output y; y = oops; }"), Error);
}

TEST(BlockParser, ErrorOnUnassignedOutput) {
  EXPECT_THROW(parseBlock("block t { input a; output y; }"), Error);
}

TEST(BlockParser, ErrorOnBadIntrinsicArity) {
  EXPECT_THROW(
      parseBlock("block t { input a; output y; y = min(a); }"), Error);
}

TEST(BlockParser, ErrorOnNestedRepeat) {
  EXPECT_THROW(parseBlock(R"(
    block t { input a; output y;
      repeat 2 { repeat 2 { y = a; } }
    }
  )"),
               Error);
}

TEST(BlockParser, ErrorCarriesLineNumber) {
  try {
    parseBlock("block t {\n  input a;\n  output y;\n  y = @;\n}");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.loc().line, 4u) << e.what();
  }
}

TEST(ProgramParser, MultiBlockWithTerminators) {
  const Program program = parseProgram(R"(
    block entry {
      input n;
      output cond, x;
      x = n * 2;
      cond = x > 10;
      if cond goto big else small;
    }
    block big {
      input x;
      output r;
      r = x - 10;
      return;
    }
    block small {
      input x;
      output r;
      r = x + 100;
      return;
    }
  )",
                                       "branchy");
  EXPECT_EQ(program.numBlocks(), 3u);
  EXPECT_EQ(evalProgram(program, {{"n", 20}}).at("r"), 30);
  EXPECT_EQ(evalProgram(program, {{"n", 1}}).at("r"), 102);
}

TEST(ProgramParser, ImplicitFallthroughIsJumpToNextBlock) {
  const Program program = parseProgram(R"(
    block first { input a; output t; t = a + 1; }
    block second { input t; output y; y = t * 2; return; }
  )",
                                       "fall");
  EXPECT_EQ(program.terminator(0).kind, TermKind::kJump);
  EXPECT_EQ(program.terminator(0).target, "second");
  EXPECT_EQ(evalProgram(program, {{"a", 4}}).at("y"), 10);
}

TEST(ProgramParser, LoopProgramTerminates) {
  const Program program = parseProgram(R"(
    block loop {
      input i, acc;
      output i, acc, cond;
      acc = acc + i;
      i = i - 1;
      cond = i > 0;
      if cond goto loop else done;
    }
    block done {
      input acc;
      output acc;
      return;
    }
  )",
                                       "looper");
  EXPECT_EQ(evalProgram(program, {{"i", 4}, {"acc", 0}}).at("acc"), 10);
}

// PR 4 input hardening: the parser must survive the first syntax error,
// resynchronise, and report every error in the source with its location.
TEST(BlockParser, PanicModeReportsMultipleDiagnostics) {
  try {
    (void)parseProgram(R"(
      block bad {
        input a, b;
        output y, z;
        y = a + ;
        z = * b;
        return;
      }
    )",
                       "multi-error");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.sourceName(), "multi-error");
    ASSERT_GE(e.diagnostics().size(), 2u);
    for (const Diagnostic& d : e.diagnostics()) {
      EXPECT_TRUE(d.loc.valid()) << d.message;
      EXPECT_FALSE(d.message.empty());
    }
    // Both bad statements reported, in source order.
    EXPECT_LT(e.diagnostics()[0].loc.line, e.diagnostics()[1].loc.line);
    // what() carries the source name and every location.
    const std::string what = e.what();
    EXPECT_NE(what.find("multi-error"), std::string::npos);
  }
}

TEST(BlockParser, RecoveryReachesErrorsInLaterBlocks) {
  try {
    (void)parseProgram(R"(
      block first {
        input a;
        output y;
        y = a + ;
        goto second;
      }
      block second {
        input y;
        output z;
        z = y * ;
        return;
      }
    )",
                       "two-blocks");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    ASSERT_GE(e.diagnostics().size(), 2u)
        << "recovery must continue past the first block: " << e.what();
  }
}

TEST(ShippedBlocks, ParseWithExpectedPaperNodeCounts) {
  // Original-DAG node counts from Table I of the paper.
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"ex1", 8}, {"ex2", 13}, {"ex3", 11}, {"ex4", 15}, {"ex5", 16}};
  for (const auto& [name, nodes] : expected) {
    const BlockDag dag = loadBlock(name);
    EXPECT_EQ(dag.size(), nodes) << name;
  }
}

}  // namespace
}  // namespace aviv
