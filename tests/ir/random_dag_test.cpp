#include "ir/random_dag.h"

#include <gtest/gtest.h>

#include "ir/interp.h"
#include "support/rng.h"

namespace aviv {
namespace {

TEST(RandomDag, DeterministicInSeed) {
  RandomDagSpec spec;
  spec.seed = 77;
  const BlockDag a = makeRandomDag(spec);
  const BlockDag b = makeRandomDag(spec);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id)
    EXPECT_EQ(a.describe(id), b.describe(id));
}

TEST(RandomDag, DifferentSeedsDiffer) {
  RandomDagSpec specA;
  specA.seed = 1;
  RandomDagSpec specB;
  specB.seed = 2;
  const BlockDag a = makeRandomDag(specA);
  const BlockDag b = makeRandomDag(specB);
  bool anyDifference = a.size() != b.size();
  for (NodeId id = 0; !anyDifference && id < a.size(); ++id)
    anyDifference = a.describe(id) != b.describe(id);
  EXPECT_TRUE(anyDifference);
}

TEST(RandomDag, MatchesSpecCounts) {
  RandomDagSpec spec;
  spec.numInputs = 5;
  spec.numOps = 12;
  spec.seed = 9;
  const BlockDag dag = makeRandomDag(spec);
  EXPECT_EQ(dag.numLeafNodes(), 5u);
  EXPECT_EQ(dag.numOpNodes(), 12u);
}

TEST(RandomDag, NoDeadOperations) {
  // Every op must be reachable from an output (the back end's contract).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDagSpec spec;
    spec.seed = seed;
    spec.numOps = 10;
    const BlockDag dag = makeRandomDag(spec);
    std::vector<bool> live(dag.size(), false);
    for (const auto& [name, id] : dag.outputs()) live[id] = true;
    for (NodeId id = dag.size(); id-- > 0;) {
      if (!live[id]) continue;
      for (NodeId operand : dag.node(id).operands) live[operand] = true;
    }
    for (NodeId id = 0; id < dag.size(); ++id) {
      if (isMachineOp(dag.node(id).op)) EXPECT_TRUE(live[id]) << seed;
    }
  }
}

TEST(RandomDag, ReuseBiasControlsDepth) {
  RandomDagSpec shallow;
  shallow.reuseBias = 0.0;
  shallow.numOps = 30;
  shallow.seed = 5;
  RandomDagSpec deep = shallow;
  deep.reuseBias = 0.95;
  const auto depthOf = [](const BlockDag& dag) {
    int depth = 0;
    for (int level : dag.levelsFromBottom()) depth = std::max(depth, level);
    return depth;
  };
  EXPECT_LT(depthOf(makeRandomDag(shallow)), depthOf(makeRandomDag(deep)));
}

TEST(RandomDag, EvaluatesWithoutSurprises) {
  RandomDagSpec spec;
  spec.seed = 123;
  const BlockDag dag = makeRandomDag(spec);
  Rng rng(6);
  std::map<std::string, int64_t> inputs;
  for (const std::string& name : dag.inputNames())
    inputs[name] = rng.intIn(-5, 5);
  const auto out = evalDagOutputs(dag, inputs);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace aviv
