#include "ir/op.h"

#include <gtest/gtest.h>

namespace aviv {
namespace {

TEST(Op, NamesRoundTrip) {
  for (int i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const auto back = opFromName(opName(op));
    ASSERT_TRUE(back.has_value()) << opName(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(Op, NameLookupIsCaseInsensitive) {
  EXPECT_EQ(opFromName("add"), Op::kAdd);
  EXPECT_EQ(opFromName("Add"), Op::kAdd);
  EXPECT_EQ(opFromName("MAC"), Op::kMac);
  EXPECT_FALSE(opFromName("bogus").has_value());
}

TEST(Op, Arity) {
  EXPECT_EQ(opArity(Op::kConst), 0);
  EXPECT_EQ(opArity(Op::kInput), 0);
  EXPECT_EQ(opArity(Op::kNeg), 1);
  EXPECT_EQ(opArity(Op::kCompl), 1);
  EXPECT_EQ(opArity(Op::kAbs), 1);
  EXPECT_EQ(opArity(Op::kAdd), 2);
  EXPECT_EQ(opArity(Op::kMac), 3);
  EXPECT_EQ(opArity(Op::kMsu), 3);
}

TEST(Op, LeafVsMachine) {
  EXPECT_TRUE(isLeafOp(Op::kConst));
  EXPECT_TRUE(isLeafOp(Op::kInput));
  EXPECT_FALSE(isMachineOp(Op::kInput));
  EXPECT_TRUE(isMachineOp(Op::kAdd));
  EXPECT_TRUE(isMachineOp(Op::kMac));
}

TEST(Op, EvalBasicArithmetic) {
  EXPECT_EQ(evalOp(Op::kAdd, 2, 3), 5);
  EXPECT_EQ(evalOp(Op::kSub, 2, 3), -1);
  EXPECT_EQ(evalOp(Op::kMul, -4, 3), -12);
  EXPECT_EQ(evalOp(Op::kDiv, 7, 2), 3);
  EXPECT_EQ(evalOp(Op::kMod, 7, 2), 1);
}

TEST(Op, EvalDivModByZeroAreDefined) {
  EXPECT_EQ(evalOp(Op::kDiv, 5, 0), 0);
  EXPECT_EQ(evalOp(Op::kMod, 5, 0), 0);
  EXPECT_EQ(evalOp(Op::kDiv, INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(evalOp(Op::kMod, INT64_MIN, -1), 0);
}

TEST(Op, EvalWrapsOnOverflow) {
  EXPECT_EQ(evalOp(Op::kAdd, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(evalOp(Op::kNeg, INT64_MIN), INT64_MIN);
}

TEST(Op, EvalBitwise) {
  EXPECT_EQ(evalOp(Op::kAnd, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(evalOp(Op::kOr, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(evalOp(Op::kXor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(evalOp(Op::kCompl, 0), -1);
  EXPECT_EQ(evalOp(Op::kShl, 1, 4), 16);
  EXPECT_EQ(evalOp(Op::kShr, -8, 1), -4);  // arithmetic shift
  EXPECT_EQ(evalOp(Op::kShl, 1, 64), 1);   // masked shift amount
}

TEST(Op, EvalComparisonsAndMinMax) {
  EXPECT_EQ(evalOp(Op::kEq, 3, 3), 1);
  EXPECT_EQ(evalOp(Op::kNe, 3, 3), 0);
  EXPECT_EQ(evalOp(Op::kLt, 2, 3), 1);
  EXPECT_EQ(evalOp(Op::kLe, 3, 3), 1);
  EXPECT_EQ(evalOp(Op::kGt, 3, 3), 0);
  EXPECT_EQ(evalOp(Op::kGe, 4, 3), 1);
  EXPECT_EQ(evalOp(Op::kMin, 2, -3), -3);
  EXPECT_EQ(evalOp(Op::kMax, 2, -3), 2);
  EXPECT_EQ(evalOp(Op::kAbs, -5), 5);
}

TEST(Op, EvalComplexOps) {
  EXPECT_EQ(evalOp(Op::kMac, 3, 4, 5), 17);   // 3*4 + 5
  EXPECT_EQ(evalOp(Op::kMsu, 3, 4, 20), 8);   // 20 - 3*4
}

TEST(Op, CommutativityFlags) {
  EXPECT_TRUE(isCommutative(Op::kAdd));
  EXPECT_TRUE(isCommutative(Op::kMul));
  EXPECT_FALSE(isCommutative(Op::kSub));
  EXPECT_FALSE(isCommutative(Op::kShl));
  EXPECT_TRUE(isCommutative(Op::kEq));
}

}  // namespace
}  // namespace aviv
