#include "ir/program.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace aviv {
namespace {

BlockDag makeBlock(const std::string& name) {
  BlockDag dag(name);
  dag.markOutput("v", dag.addConst(1));
  return dag;
}

TEST(Program, AddAndLookupBlocks) {
  Program program("p");
  program.addBlock(makeBlock("a"), {TermKind::kJump, "b", "", ""});
  program.addBlock(makeBlock("b"), {TermKind::kReturn, "", "", ""});
  EXPECT_EQ(program.numBlocks(), 2u);
  EXPECT_EQ(program.blockIndex("a"), 0u);
  EXPECT_EQ(program.blockIndex("b"), 1u);
  EXPECT_THROW((void)program.blockIndex("zzz"), Error);
  program.validate();
}

TEST(Program, DuplicateBlockNameRejected) {
  Program program("p");
  program.addBlock(makeBlock("a"), {TermKind::kReturn, "", "", ""});
  EXPECT_THROW(program.addBlock(makeBlock("a"), {TermKind::kReturn, "", "", ""}),
               Error);
}

TEST(Program, ValidateRejectsDanglingJumpTarget) {
  Program program("p");
  program.addBlock(makeBlock("a"), {TermKind::kJump, "nowhere", "", ""});
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, ValidateRejectsBranchCondNotAnOutput) {
  Program program("p");
  BlockDag dag("a");
  dag.markOutput("v", dag.addConst(1));
  program.addBlock(std::move(dag),
                   {TermKind::kBranch, "a", "a", "not_an_output"});
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, ValidateRejectsEmptyProgram) {
  Program program("p");
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, ValidBranchPasses) {
  Program program("p");
  BlockDag dag("a");
  dag.markOutput("cond", dag.addConst(1));
  program.addBlock(std::move(dag), {TermKind::kBranch, "b", "a", "cond"});
  program.addBlock(makeBlock("b"), {TermKind::kReturn, "", "", ""});
  program.validate();
}

}  // namespace
}  // namespace aviv
