// Emitter round-trip tests. The quarantine artifact stores machines and
// blocks as re-emitted source text, so text emission must be lossless in
// the ways the replay depends on: a re-parsed machine must fingerprint
// identically, and a re-parsed block must compute the same function.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ir/emit.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isdl/emit.h"
#include "isdl/parser.h"
#include "service/fingerprint.h"
#include "support/rng.h"

namespace aviv {
namespace {

constexpr const char* kMachines[] = {"arch1", "arch2", "arch3", "arch4",
                                     "dsp16"};
constexpr const char* kBlocks[] = {"ex1",  "ex2",  "ex3",    "ex4",
                                   "ex5",  "fig2", "fig6",   "biquad",
                                   "dct4", "matvec2"};

TEST(EmitRoundTrip, MachineTextReparsesToSameFingerprint) {
  for (const char* name : kMachines) {
    SCOPED_TRACE(name);
    const Machine machine = loadMachine(name);
    const std::string text = emitMachineText(machine);
    const Machine reparsed = parseMachine(text, std::string(name) + "-emit");
    EXPECT_EQ(fingerprintMachine(machine), fingerprintMachine(reparsed))
        << "emitted ISDL for " << name << " is not semantics-preserving";
  }
}

TEST(EmitRoundTrip, BlockTextReparsesToSameFunction) {
  for (const char* name : kBlocks) {
    SCOPED_TRACE(name);
    const BlockDag dag = loadBlock(name);
    const std::string text = emitBlockText(dag);
    // parseBlock is the exact entry point quarantine replay uses.
    const BlockDag redag = parseBlock(text);
    ASSERT_EQ(dag.inputNames(), redag.inputNames());
    Rng rng(0xE317);
    for (int vector = 0; vector < 8; ++vector) {
      std::map<std::string, int64_t> inputs;
      for (const std::string& input : dag.inputNames())
        inputs[input] = rng.intIn(-1000, 1000);
      EXPECT_EQ(evalDagOutputs(dag, inputs), evalDagOutputs(redag, inputs))
          << "vector " << vector;
    }
  }
}

TEST(EmitRoundTrip, EmittedTextIsStable) {
  // Emit→parse→emit must be a fixed point: the quarantine dir contents
  // are diffable across runs.
  for (const char* name : kBlocks) {
    SCOPED_TRACE(name);
    const std::string once = emitBlockText(loadBlock(name));
    EXPECT_EQ(emitBlockText(parseBlock(once)), once);
  }
  for (const char* name : kMachines) {
    SCOPED_TRACE(name);
    const std::string once = emitMachineText(loadMachine(name));
    EXPECT_EQ(emitMachineText(parseMachine(once, "stable")), once);
  }
}

}  // namespace
}  // namespace aviv
