// Quarantine artifact tests: a verification failure must produce a
// self-contained bundle that, replayed in isolation (re-parsed machine,
// re-parsed block, rehydrated image, recorded seed), reproduces the exact
// mismatch — and the quarantine-write failpoint must never escalate.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "driver/codegen.h"
#include "ir/parser.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "service/fingerprint.h"
#include "support/failpoint.h"
#include "support/io.h"
#include "verify/quarantine.h"
#include "verify/verify.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // gtest_discover_tests runs each TEST as its own ctest entry, possibly
    // in parallel — the scratch dir must be unique per test.
    const std::string test =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = (fs::temp_directory_path() / ("aviv_quarantine_" + test)).string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FailPoints::instance().clear();
    fs::remove_all(dir_);
  }
  std::string dir_;
};

std::vector<std::string> artifactDirs(const std::string& root) {
  std::vector<std::string> dirs;
  if (!fs::exists(root)) return dirs;
  for (const auto& entry : fs::directory_iterator(root))
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  return dirs;
}

// End to end: the verify-corrupt-asm failpoint produces a miscompile, the
// driver quarantines it, and replaying the artifact reproduces the
// mismatch deterministically.
TEST_F(QuarantineTest, ArtifactRoundTripReproducesMismatch) {
  FailPoints::instance().configure("verify-corrupt-asm:1:1");
  DriverOptions options;
  options.verify.level = VerifyLevel::kAll;
  options.verify.quarantineDir = dir_;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const CompiledBlock block =
      generator.compileBlock(loadBlock("ex1"), symbols);
  ASSERT_TRUE(block.quarantined);

  const std::vector<std::string> dirs = artifactDirs(dir_);
  ASSERT_EQ(dirs.size(), 1u);
  for (const char* file :
       {"machine.isdl", "block.blk", "entry.bin", "asm.txt", "meta.txt"})
    EXPECT_TRUE(fs::exists(fs::path(dirs[0]) / file)) << file;

  const ReplayResult replay = replayQuarantineArtifact(dirs[0]);
  EXPECT_TRUE(replay.reproduced)
      << "replay must reproduce the mismatch: " << replay.report.detail();
  EXPECT_FALSE(replay.report.passed);
  EXPECT_GE(replay.report.mismatchVector, 0);

  // Deterministic: replaying twice yields the identical report.
  const ReplayResult again = replayQuarantineArtifact(dirs[0]);
  EXPECT_EQ(again.report.detail(), replay.report.detail());
}

// A healthy compile quarantines nothing.
TEST_F(QuarantineTest, NoArtifactOnCleanCompile) {
  DriverOptions options;
  options.verify.level = VerifyLevel::kAll;
  options.verify.quarantineDir = dir_;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const CompiledBlock block =
      generator.compileBlock(loadBlock("ex1"), symbols);
  EXPECT_FALSE(block.quarantined);
  EXPECT_TRUE(artifactDirs(dir_).empty());
}

// Quarantine I/O failure (injected) must not escalate: the compile still
// degrades to the verified baseline and completes.
TEST_F(QuarantineTest, QuarantineWriteFailureIsSwallowed) {
  FailPoints::instance().configure(
      "verify-corrupt-asm:1:1,quarantine-write:1:1");
  DriverOptions options;
  options.verify.level = VerifyLevel::kAll;
  options.verify.quarantineDir = dir_;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const CompiledBlock block =
      generator.compileBlock(loadBlock("ex1"), symbols);
  EXPECT_TRUE(block.quarantined);
  EXPECT_TRUE(block.degraded);
  EXPECT_GT(block.numInstructions(), 0);
  EXPECT_TRUE(artifactDirs(dir_).empty()) << "write was injected to fail";
}

// Direct library-level round trip, no failpoints: corrupt the cached
// scope-independent image by hand, write the artifact, replay it.
TEST_F(QuarantineTest, DirectWriteAndReplay) {
  const Machine machine = loadMachine("arch2");
  const BlockDag dag = loadBlock("ex3");
  // Compile through a throwaway cache so we can take the entry's
  // scope-independent image — the exact form the verifier consumes.
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  DriverOptions options;  // verification off; we drive the verifier by hand
  options.cache = cache;
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  (void)generator.compileBlock(dag, symbols);
  const Hash128 key =
      compileFingerprint(generator.context(), dag, options.core,
                         options.runPeephole, options.outputsToMemoryFallback);
  const auto entry = cache->lookup(key);
  ASSERT_NE(entry, nullptr);

  VerifyOptions vopts;
  vopts.level = VerifyLevel::kAll;
  CodeImage image = entry->image;
  ASSERT_TRUE(corruptImageForTesting(image));
  const VerifyReport report =
      verifyCompiledBlock(machine, dag, image, entry->symbolNames, vopts);
  ASSERT_TRUE(report.checked);
  ASSERT_FALSE(report.passed);

  const std::string artifact = writeQuarantineArtifact(
      dir_, machine, dag, image, entry->symbolNames, vopts, report);
  ASSERT_FALSE(artifact.empty());
  const ReplayResult replay = replayQuarantineArtifact(artifact);
  EXPECT_TRUE(replay.reproduced);
  EXPECT_EQ(replay.report.mismatchOutput, report.mismatchOutput);
  EXPECT_EQ(replay.report.expected, report.expected);
  EXPECT_EQ(replay.report.actual, report.actual);
}

// Empty quarantine dir means "don't write" — best-effort no-op.
TEST_F(QuarantineTest, EmptyDirSkipsWrite) {
  FailPoints::instance().configure("verify-corrupt-asm:1:1");
  DriverOptions options;
  options.verify.level = VerifyLevel::kAll;  // quarantineDir left empty
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  const CompiledBlock block =
      generator.compileBlock(loadBlock("ex1"), symbols);
  EXPECT_TRUE(block.quarantined);
  EXPECT_TRUE(block.degraded);
}

}  // namespace
}  // namespace aviv
