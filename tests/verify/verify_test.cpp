// Differential-verification tests (DESIGN.md System 25): every shipped
// block on every shipped machine must pass verification cold and warm; an
// injected miscompile must be quarantined and degraded to the verified
// baseline without ever reaching the cache; the verified bit must let warm
// hits skip the simulator while a verifier bump forces a recheck.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "driver/codegen.h"
#include "ir/parser.h"
#include "ir/random_dag.h"
#include "isdl/parser.h"
#include "service/cache.h"
#include "service/fingerprint.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "verify/verify.h"

namespace aviv {
namespace {

namespace fs = std::filesystem;

class VerifyTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::instance().clear(); }
};

DriverOptions verifyAllOptions() {
  DriverOptions options;
  options.core = CodegenOptions::heuristicsOn();
  options.verify.level = VerifyLevel::kAll;
  return options;
}

TEST_F(VerifyTest, SampledSelectionIsDeterministicAndBounded) {
  VerifyOptions options;
  options.level = VerifyLevel::kSampled;
  options.sampleRate = 0.5;
  const bool first = shouldVerifyBlock(options, "ex1");
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(shouldVerifyBlock(options, "ex1"), first);
  options.sampleRate = 1.0;
  EXPECT_TRUE(shouldVerifyBlock(options, "anything"));
  options.sampleRate = 0.0;
  EXPECT_FALSE(shouldVerifyBlock(options, "anything"));
  options.level = VerifyLevel::kOff;
  options.sampleRate = 1.0;
  EXPECT_FALSE(shouldVerifyBlock(options, "ex1"));
  options.level = VerifyLevel::kAll;
  options.sampleRate = 0.0;
  EXPECT_TRUE(shouldVerifyBlock(options, "ex1"));
}

// The acceptance matrix: with verification at kAll, every shipped block
// compiles and verifies on every shipped machine, cold and then warm from
// the cache (combinations a machine genuinely cannot implement are
// reported as recoverable errors and skipped).
TEST_F(VerifyTest, EveryShippedBlockVerifiesOnEveryMachineColdAndWarm) {
  const std::vector<std::string> machines = {"arch1", "arch2", "arch3",
                                             "arch4", "dsp16"};
  const std::vector<std::string> blocks = {"ex1",  "ex2",  "ex3",    "ex4",
                                           "ex5",  "fig2", "fig6",   "biquad",
                                           "dct4", "matvec2"};
  int verified = 0;
  for (const std::string& machineName : machines) {
    const Machine machine = loadMachine(machineName);
    auto cache = std::make_shared<ResultCache>(CacheConfig{});
    DriverOptions options = verifyAllOptions();
    options.cache = cache;
    for (const std::string& blockName : blocks) {
      const BlockDag dag = loadBlock(blockName);
      SymbolTable cold;
      CompiledBlock coldBlock;
      try {
        CodeGenerator generator(machine, options);
        coldBlock = generator.compileBlock(dag, cold);
      } catch (const Error&) {
        continue;  // not implementable on this machine — fine
      }
      EXPECT_FALSE(coldBlock.quarantined)
          << blockName << " on " << machineName;
      EXPECT_FALSE(coldBlock.degraded) << blockName << " on " << machineName;
      ++verified;

      // Warm: the same compile replays from the cache, and because the
      // entry carries a current verified bit, without re-simulation.
      CodeGenerator warmGen(machine, options);
      SymbolTable warm;
      const CompiledBlock warmBlock = warmGen.compileBlock(dag, warm);
      EXPECT_TRUE(warmBlock.fromCache) << blockName << " on " << machineName;
      EXPECT_FALSE(warmBlock.quarantined);
      EXPECT_EQ(warmBlock.image.asmText(machine),
                coldBlock.image.asmText(machine));
      const std::string warmJson = warmGen.telemetry().toJson();
      EXPECT_EQ(warmJson.find("blocksChecked"), std::string::npos)
          << "verified warm hit must skip the simulator";
    }
  }
  // The matrix must not silently degenerate to "everything skipped".
  EXPECT_GE(verified, 25);
}

TEST_F(VerifyTest, CorruptAsmFailpointQuarantinesDegradesAndNeverCaches) {
  FailPoints::instance().configure("verify-corrupt-asm:1:1");
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  DriverOptions options = verifyAllOptions();
  options.cache = cache;
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");

  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  EXPECT_TRUE(block.quarantined);
  EXPECT_TRUE(block.degraded);
  EXPECT_GT(block.numInstructions(), 0);
  EXPECT_EQ(cache->stats().stores, 0)
      << "a quarantined result must never be cached";
  const std::string json = generator.telemetry().toJson();
  EXPECT_NE(json.find("verifyFailures"), std::string::npos);

  // The fault was one-shot: a fresh compile is clean, passes verification,
  // and is cached as verified.
  CodeGenerator healthyGen(machine, options);
  SymbolTable symbols2;
  const CompiledBlock healthy = healthyGen.compileBlock(dag, symbols2);
  EXPECT_FALSE(healthy.quarantined);
  EXPECT_FALSE(healthy.degraded);
  EXPECT_FALSE(healthy.fromCache);
  EXPECT_EQ(cache->stats().stores, 1);
}

TEST_F(VerifyTest, CorruptAsmWithFallbackDisabledThrows) {
  FailPoints::instance().configure("verify-corrupt-asm:1:1");
  DriverOptions options = verifyAllOptions();
  options.baselineFallback = false;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  EXPECT_THROW((void)generator.compileBlock(loadBlock("ex1"), symbols),
               Error);
}

// An adversarially deep random DAG that blows the split-node ceiling must
// degrade to the baseline — which lifts the ceiling — and still verify.
TEST_F(VerifyTest, ResourceCeilingDegradesToVerifiedBaseline) {
  RandomDagSpec spec;
  spec.numInputs = 6;
  spec.numOps = 40;
  spec.reuseBias = 0.9;
  spec.seed = 20260806;
  const BlockDag dag = makeRandomDag(spec);

  DriverOptions options = verifyAllOptions();
  options.core.maxSndNodes = 25;  // far below what 40 ops need
  CodeGenerator generator(loadMachine("dsp16"), options);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  EXPECT_TRUE(block.degraded);
  EXPECT_FALSE(block.quarantined);
  EXPECT_GT(block.numInstructions(), 0);
}

TEST_F(VerifyTest, ResourceCeilingWithoutFallbackSurfacesTypedError) {
  RandomDagSpec spec;
  spec.numOps = 40;
  spec.seed = 7;
  const BlockDag dag = makeRandomDag(spec);
  DriverOptions options;
  options.baselineFallback = false;
  options.core.maxSndNodes = 25;
  CodeGenerator generator(loadMachine("arch1"), options);
  SymbolTable symbols;
  EXPECT_THROW((void)generator.compileBlock(dag, symbols),
               ResourceLimitExceeded);
}

// The verified bit's upgrade path: an entry stored without verification
// (kSampled that sampled nothing) is re-verified on its first verifying
// hit, upgraded in place, and subsequent hits skip the simulator.
TEST_F(VerifyTest, UnverifiedEntryIsVerifiedOnceOnHitThenSkipped) {
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");

  DriverOptions sampledNone = verifyAllOptions();
  sampledNone.cache = cache;
  sampledNone.verify.level = VerifyLevel::kSampled;
  sampledNone.verify.sampleRate = 0.0;  // store, but verify nothing
  {
    CodeGenerator generator(machine, sampledNone);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    EXPECT_FALSE(block.fromCache);
  }
  EXPECT_EQ(cache->stats().stores, 1);

  // First verifying session: hit + on-hit verification + in-place upgrade.
  DriverOptions all = verifyAllOptions();
  all.cache = cache;
  {
    CodeGenerator generator(machine, all);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    EXPECT_TRUE(block.fromCache);
    const std::string json = generator.telemetry().toJson();
    EXPECT_NE(json.find("blocksChecked"), std::string::npos)
        << "unverified entry must be re-checked on hit";
  }
  EXPECT_EQ(cache->stats().stores, 2) << "upgrade re-stores the entry";

  // Second verifying session: the upgraded entry skips the simulator.
  {
    CodeGenerator generator(machine, all);
    SymbolTable symbols;
    const CompiledBlock block = generator.compileBlock(dag, symbols);
    EXPECT_TRUE(block.fromCache);
    const std::string json = generator.telemetry().toJson();
    EXPECT_EQ(json.find("blocksChecked"), std::string::npos)
        << "verified warm hit must skip the simulator";
  }
  EXPECT_EQ(cache->stats().stores, 2);
}

// A verifier bump changes the fingerprint salt: stale entries become
// invisible and the block is recompiled (and re-verified) from cold.
TEST_F(VerifyTest, StaleVerifierVersionForcesRecompile) {
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");

  DriverOptions all = verifyAllOptions();
  all.cache = cache;
  {
    CodeGenerator generator(machine, all);
    SymbolTable symbols;
    (void)generator.compileBlock(dag, symbols);
  }
  EXPECT_EQ(cache->stats().stores, 1);

  DriverOptions bumped = all;
  bumped.verify.verifierVersion = kVerifierVersion + 1;
  CodeGenerator generator(machine, bumped);
  SymbolTable symbols;
  const CompiledBlock block = generator.compileBlock(dag, symbols);
  EXPECT_FALSE(block.fromCache)
      << "a new verifier version must not reuse old entries";
  EXPECT_EQ(cache->stats().stores, 2);

  // Verification-off sessions use salt 0 and are also blind to both.
  DriverOptions off = all;
  off.verify.level = VerifyLevel::kOff;
  CodeGenerator offGen(machine, off);
  SymbolTable symbols2;
  const CompiledBlock offBlock = offGen.compileBlock(dag, symbols2);
  EXPECT_FALSE(offBlock.fromCache);
}

TEST_F(VerifyTest, CorruptImageForTestingBreaksVerification) {
  const Machine machine = loadMachine("arch1");
  const BlockDag dag = loadBlock("ex1");
  // Compile through the cache so we get the entry's scope-independent
  // image — the exact form the verifier consumes.
  auto cache = std::make_shared<ResultCache>(CacheConfig{});
  DriverOptions options;  // verification off; we drive the verifier by hand
  options.cache = cache;
  CodeGenerator generator(machine, options);
  SymbolTable symbols;
  (void)generator.compileBlock(dag, symbols);
  const Hash128 key =
      compileFingerprint(generator.context(), dag, options.core,
                         options.runPeephole, options.outputsToMemoryFallback);
  const auto entry = cache->lookup(key);
  ASSERT_NE(entry, nullptr);

  VerifyOptions vopts;
  vopts.level = VerifyLevel::kAll;
  const VerifyReport good = verifyCompiledBlock(machine, dag, entry->image,
                                                entry->symbolNames, vopts);
  ASSERT_TRUE(good.checked);
  EXPECT_TRUE(good.passed) << good.detail();

  CodeImage corrupt = entry->image;
  ASSERT_TRUE(corruptImageForTesting(corrupt));
  const VerifyReport bad =
      verifyCompiledBlock(machine, dag, corrupt, entry->symbolNames, vopts);
  ASSERT_TRUE(bad.checked);
  EXPECT_FALSE(bad.passed);
  EXPECT_NE(bad.detail().find("mismatch"), std::string::npos);
}

TEST_F(VerifyTest, ProgramCompileVerifiesEveryBlock) {
  const Machine machine = loadMachine("arch1");
  const Program program = parseProgram(R"(
    block first {
      input a, b;
      output t;
      t = (a + b) * a;
    }
    block second {
      input t, c;
      output y;
      y = t - c;
      return;
    }
  )",
                                       "verify-program");
  DriverOptions options = verifyAllOptions();
  CodeGenerator generator(machine, options);
  const CompiledProgram compiled = generator.compileProgram(program);
  for (const CompiledBlock& block : compiled.blocks) {
    EXPECT_FALSE(block.quarantined);
    EXPECT_FALSE(block.degraded);
  }
  const std::string json = generator.telemetry().toJson();
  EXPECT_NE(json.find("blocksChecked"), std::string::npos);
}

}  // namespace
}  // namespace aviv
